package object

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

func pw(ts types.TS, v string, w types.WTuple) wire.PWReq {
	return wire.PWReq{TS: ts, PW: types.TSVal{TS: ts, Val: types.Value(v)}, W: w}
}

func wreq(ts types.TS, v string, m types.TSRMatrix) wire.WReq {
	pair := types.TSVal{TS: ts, Val: types.Value(v)}
	return wire.WReq{TS: ts, PW: pair, W: types.WTuple{TSVal: pair, TSR: m}}
}

var anyNode = transport.Writer()

func TestSafeAdoptsNewerPW(t *testing.T) {
	o := NewSafe(0, 1)
	reply, ok := o.Handle(anyNode, pw(1, "a", types.InitWTuple()))
	if !ok {
		t.Fatal("fresh PW must be acknowledged")
	}
	ack := reply.(wire.PWAck)
	if ack.TS != 1 || len(ack.TSR) != 1 || ack.TSR[0] != 0 {
		t.Errorf("PW ack = %+v", ack)
	}
	snap := o.Snapshot()
	if snap.TS != 1 || !snap.PW.Val.Equal(types.Value("a")) {
		t.Errorf("state after PW: %+v", snap)
	}
}

func TestSafeRejectsStalePW(t *testing.T) {
	o := NewSafe(0, 1)
	o.Handle(anyNode, pw(5, "new", types.InitWTuple()))
	if _, ok := o.Handle(anyNode, pw(3, "old", types.InitWTuple())); ok {
		t.Error("stale PW (ts′ ≤ ts) must be silently ignored per Fig. 3")
	}
	if snap := o.Snapshot(); snap.TS != 5 {
		t.Errorf("state regressed to %d", snap.TS)
	}
}

func TestSafeWAcceptsEqualTS(t *testing.T) {
	// Fig. 3: W uses ts′ ≥ ts (the same write's W follows its PW).
	o := NewSafe(0, 1)
	o.Handle(anyNode, pw(2, "v", types.InitWTuple()))
	if _, ok := o.Handle(anyNode, wreq(2, "v", types.NewTSRMatrix())); !ok {
		t.Error("W with ts′ = ts must be accepted")
	}
	if _, ok := o.Handle(anyNode, wreq(1, "old", types.NewTSRMatrix())); ok {
		t.Error("W with ts′ < ts must be ignored")
	}
}

func TestSafeReadStoresReaderTimestamp(t *testing.T) {
	o := NewSafe(0, 2)
	reply, ok := o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 1, TSR: 7})
	if !ok {
		t.Fatal("fresh READ must be acknowledged")
	}
	ack := reply.(wire.ReadAck)
	if ack.TSR != 7 || ack.Round != wire.Round1 {
		t.Errorf("ack = %+v", ack)
	}
	if snap := o.Snapshot(); snap.TSR[1] != 7 || snap.TSR[0] != 0 {
		t.Errorf("tsr = %v", snap.TSR)
	}
	// Stale and duplicate reader timestamps are ignored.
	if _, ok := o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 1, TSR: 7}); ok {
		t.Error("equal tsr must be ignored (tsr′ > tsr[j] guard)")
	}
	if _, ok := o.Handle(anyNode, wire.ReadReq{Round: wire.Round2, Reader: 1, TSR: 5}); ok {
		t.Error("lower tsr must be ignored")
	}
	// Out-of-range reader IDs are Byzantine payloads: no reply.
	if _, ok := o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 9, TSR: 1}); ok {
		t.Error("out-of-range reader must be ignored")
	}
}

func TestSafeReadReturnsClones(t *testing.T) {
	o := NewSafe(0, 1)
	o.Handle(anyNode, pw(1, "abc", types.InitWTuple()))
	reply, _ := o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1})
	ack := reply.(wire.ReadAck)
	ack.PW.Val[0] = 'z'
	if snap := o.Snapshot(); snap.PW.Val[0] != 'a' {
		t.Error("read ack must not alias object state")
	}
}

func TestSafeSnapshotRestore(t *testing.T) {
	o := NewSafe(0, 1)
	o.Handle(anyNode, pw(3, "x", types.InitWTuple()))
	snap := o.Snapshot()
	o.Handle(anyNode, pw(9, "y", types.InitWTuple()))
	o.Restore(snap)
	if got := o.Snapshot(); got.TS != 3 || !got.PW.Val.Equal(types.Value("x")) {
		t.Errorf("restore failed: %+v", got)
	}
}

func TestRegularBuildsHistory(t *testing.T) {
	o := NewRegular(0, 1)
	// Write 1: PW then W.
	o.Handle(anyNode, pw(1, "a", types.InitWTuple()))
	m1 := types.TSRMatrix{0: types.TSRVector{0}}
	o.Handle(anyNode, wreq(1, "a", m1))
	// Write 2: PW carries write 1's complete tuple.
	w1 := types.WTuple{TSVal: types.TSVal{TS: 1, Val: types.Value("a")}, TSR: m1}
	o.Handle(anyNode, wire.PWReq{TS: 2, PW: types.TSVal{TS: 2, Val: types.Value("b")}, W: w1})

	snap := o.Snapshot()
	if len(snap.History) != 3 { // ts 0, 1, 2
		t.Fatalf("history has %d entries, want 3: %v", len(snap.History), snap.History.Timestamps())
	}
	e1 := snap.History[1]
	if e1.W == nil || !e1.W.Equal(w1) {
		t.Errorf("history[1].w = %v, want the complete tuple", e1.W)
	}
	e2 := snap.History[2]
	if e2.W != nil || !e2.PW.Val.Equal(types.Value("b")) {
		t.Errorf("history[2] = %+v, want ⟨pw2, nil⟩ until the W round", e2)
	}
}

func TestRegularPWFillsSkippedSlot(t *testing.T) {
	// An object that missed write 1 entirely learns its tuple from
	// write 2's PW message (the §5 prose behaviour).
	o := NewRegular(0, 1)
	w1 := types.WTuple{TSVal: types.TSVal{TS: 1, Val: types.Value("a")}, TSR: types.NewTSRMatrix()}
	o.Handle(anyNode, wire.PWReq{TS: 2, PW: types.TSVal{TS: 2, Val: types.Value("b")}, W: w1})
	snap := o.Snapshot()
	if e, ok := snap.History[1]; !ok || e.W == nil || !e.W.Equal(w1) {
		t.Errorf("history[1] not backfilled: %+v", snap.History)
	}
}

func TestRegularReadShipsSuffix(t *testing.T) {
	o := NewRegular(0, 1)
	for ts := types.TS(1); ts <= 5; ts++ {
		o.Handle(anyNode, pw(ts, "v", types.InitWTuple()))
		o.Handle(anyNode, wreq(ts, "v", types.NewTSRMatrix()))
	}
	reply, ok := o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1, CacheTS: 3})
	if !ok {
		t.Fatal("read must be acknowledged")
	}
	h := reply.(wire.ReadAckHist).History
	if _, has2 := h[2]; has2 {
		t.Error("suffix must omit entries below CacheTS")
	}
	for ts := types.TS(3); ts <= 5; ts++ {
		if _, ok := h[ts]; !ok {
			t.Errorf("suffix missing ts %d", ts)
		}
	}
}

func TestRegularGCPrunesBelowWatermark(t *testing.T) {
	o := NewRegular(0, 2)
	o.EnableGC()
	for ts := types.TS(1); ts <= 10; ts++ {
		o.Handle(anyNode, pw(ts, "v", types.InitWTuple()))
		o.Handle(anyNode, wreq(ts, "v", types.NewTSRMatrix()))
	}
	// Reader 0 acknowledges cache ts 8; reader 1 is still at 0 — no
	// pruning below the minimum.
	o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1, CacheTS: 8})
	if got := o.HistoryLen(); got != 11 {
		t.Fatalf("history pruned below the min watermark: %d entries", got)
	}
	// Reader 1 catches up: everything below 8 can go.
	o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 1, TSR: 1, CacheTS: 8})
	if got := o.HistoryLen(); got != 3 { // ts 8, 9, 10
		t.Fatalf("history after GC = %d entries, want 3", got)
	}
	// The newest entry always survives, even above every watermark.
	o.Handle(anyNode, wire.ReadReq{Round: wire.Round2, Reader: 0, TSR: 2, CacheTS: 99})
	o.Handle(anyNode, wire.ReadReq{Round: wire.Round2, Reader: 1, TSR: 2, CacheTS: 99})
	if got := o.HistoryLen(); got != 1 {
		t.Fatalf("history = %d entries, want just the newest", got)
	}
}

func TestRegularNoGCByDefault(t *testing.T) {
	o := NewRegular(0, 1)
	for ts := types.TS(1); ts <= 10; ts++ {
		o.Handle(anyNode, pw(ts, "v", types.InitWTuple()))
		o.Handle(anyNode, wreq(ts, "v", types.NewTSRMatrix()))
	}
	o.Handle(anyNode, wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1, CacheTS: 9})
	if got := o.HistoryLen(); got != 11 {
		t.Errorf("history = %d entries, want 11 (GC off)", got)
	}
}

func TestRegularHistoryBytesGrow(t *testing.T) {
	o := NewRegular(0, 1)
	before := o.HistoryBytes()
	for ts := types.TS(1); ts <= 20; ts++ {
		o.Handle(anyNode, pw(ts, "some-payload-bytes", types.InitWTuple()))
		o.Handle(anyNode, wreq(ts, "some-payload-bytes", types.NewTSRMatrix()))
	}
	if after := o.HistoryBytes(); after <= before {
		t.Errorf("HistoryBytes did not grow: %d → %d", before, after)
	}
}

func TestRegularStaleWriterTraffic(t *testing.T) {
	o := NewRegular(0, 1)
	o.Handle(anyNode, pw(5, "new", types.InitWTuple()))
	if _, ok := o.Handle(anyNode, pw(3, "old", types.InitWTuple())); ok {
		t.Error("stale PW must be ignored")
	}
	if _, ok := o.Handle(anyNode, wreq(4, "old", types.NewTSRMatrix())); ok {
		t.Error("stale W must be ignored")
	}
	if _, ok := o.Handle(anyNode, wreq(5, "new", types.NewTSRMatrix())); !ok {
		t.Error("W with equal ts must be accepted")
	}
}
