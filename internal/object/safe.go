// Package object implements the correct base storage objects of the
// paper: the safe-protocol object of Fig. 3 and the history-keeping
// regular-protocol object of Fig. 5, including the §5.1 history-suffix
// optimization and garbage collection.
//
// Objects are passive atomic read-modify-write automata: each incoming
// message is processed atomically and produces at most one reply. The
// reply-inside-the-guard structure of the pseudo-code is preserved: an
// object that rejects a stale timestamp sends nothing, and the sender
// (which in a correct run never sends stale timestamps) simply sees one
// fewer reply.
package object

import (
	"sync"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Safe is the base object of the safe storage protocol (Fig. 3). Its
// state is the write timestamp ts, the pre-write pair pw, the complete
// tuple w, and the per-reader control timestamps tsr[1..R].
type Safe struct {
	id types.ObjectID

	mu  sync.Mutex
	ts  types.TS
	pw  types.TSVal
	w   types.WTuple
	tsr types.TSRVector
}

var _ transport.Handler = (*Safe)(nil)

// NewSafe returns a safe object with the Fig. 3 initial state:
// ts = 0, pw = ⟨0,⊥⟩, w = ⟨pw, inittsrarray⟩, tsr[j] = 0 for all j.
func NewSafe(id types.ObjectID, readers int) *Safe {
	return &Safe{
		id:  id,
		pw:  types.InitTSVal(),
		w:   types.InitWTuple(),
		tsr: types.NewTSRVector(readers),
	}
}

// ID returns the object's index.
func (s *Safe) ID() types.ObjectID { return s.id }

// Handle processes one client message per Fig. 3.
func (s *Safe) Handle(_ transport.NodeID, req wire.Msg) (wire.Msg, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m := req.(type) {
	case wire.PWReq:
		// upon PW⟨ts′,pw′,w′⟩: if ts′ > ts then adopt and ack with tsr.
		if m.TS > s.ts {
			s.ts = m.TS
			s.pw = m.PW.Clone()
			s.w = m.W.Clone()
			return wire.PWAck{ObjectID: s.id, TS: s.ts, TSR: s.tsr.Clone()}, true
		}
		return nil, false
	case wire.WReq:
		// upon W⟨ts′,pw′,w′⟩: if ts′ ≥ ts then adopt and ack.
		if m.TS >= s.ts {
			s.ts = m.TS
			s.pw = m.PW.Clone()
			s.w = m.W.Clone()
			return wire.WAck{ObjectID: s.id, TS: s.ts}, true
		}
		return nil, false
	case wire.ReadReq:
		// upon READk⟨tsr′⟩ from r_j: if tsr′ > tsr[j] then store it and
		// ack with the current pw and w.
		j := m.Reader
		if int(j) < 0 || int(j) >= len(s.tsr) {
			return nil, false
		}
		// Read-repair: a round-2 request may piggyback the dominant
		// complete tuple the reader saw in round 1. Install it under
		// the same timestamp-dominance guard as a W message (clients
		// are correct in the model, and the reader only forwards
		// tuples vouched for by b+1 identical replies, so the hint is
		// genuine). Applied independently of the tsr guard below: the
		// repair is valid even when this particular READ message is a
		// duplicate.
		if rep := m.Repair; rep != nil && rep.TSVal.TS >= s.ts {
			s.ts = rep.TSVal.TS
			s.pw = rep.TSVal.Clone()
			s.w = rep.Clone()
		}
		if m.TSR > s.tsr[j] {
			s.tsr[j] = m.TSR
			return wire.ReadAck{
				ObjectID: s.id,
				Round:    m.Round,
				TSR:      s.tsr[j],
				PW:       s.pw.Clone(),
				W:        s.w.Clone(),
			}, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// SafeSnapshot is a copy of a safe object's full state, used by tests
// and by the lower-bound adversary (which forges such states).
type SafeSnapshot struct {
	TS  types.TS
	PW  types.TSVal
	W   types.WTuple
	TSR types.TSRVector
}

// Snapshot returns a deep copy of the object state.
func (s *Safe) Snapshot() SafeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SafeSnapshot{TS: s.ts, PW: s.pw.Clone(), W: s.w.Clone(), TSR: s.tsr.Clone()}
}

// Restore overwrites the object state with the snapshot. Only test
// harnesses and adversaries use it; correct objects never restore.
func (s *Safe) Restore(snap SafeSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ts = snap.TS
	s.pw = snap.PW.Clone()
	s.w = snap.W.Clone()
	s.tsr = snap.TSR.Clone()
}
