package recovery_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/recovery"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// regStore is a minimal multi-register base object for these tests:
// one object.Regular automaton per register name, addressed with the
// wire.RegOp envelope — the same shape as internal/store's registry.
type regStore struct {
	mu      sync.Mutex
	readers int
	id      types.ObjectID
	regs    map[string]*object.Regular
}

func newRegStore(id types.ObjectID, readers int) *regStore {
	return &regStore{id: id, readers: readers, regs: make(map[string]*object.Regular)}
}

func (s *regStore) get(reg string) *object.Regular {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.regs[reg]
	if r == nil {
		r = object.NewRegular(s.id, s.readers)
		s.regs[reg] = r
	}
	return r
}

func (s *regStore) Handle(from transport.NodeID, req wire.Msg) (wire.Msg, bool) {
	op, ok := req.(wire.RegOp)
	if !ok {
		return nil, false
	}
	reply, send := s.get(op.Reg).Handle(from, op.Msg)
	if !send {
		return nil, false
	}
	return wire.RegOp{Reg: op.Reg, Msg: reply}, true
}

func (s *regStore) SnapshotRegs() []wire.RegState {
	s.mu.Lock()
	names := make([]string, 0, len(s.regs))
	autos := make([]*object.Regular, 0, len(s.regs))
	for name, r := range s.regs {
		names = append(names, name)
		autos = append(autos, r)
	}
	s.mu.Unlock()
	out := make([]wire.RegState, len(names))
	for i := range names {
		snap := autos[i].Snapshot()
		out[i] = wire.RegState{Reg: names[i], TS: snap.TS, History: snap.History, TSR: snap.TSR}
	}
	return out
}

func (s *regStore) RestoreRegs(regs []wire.RegState) {
	for _, rs := range regs {
		s.get(rs.Reg).Restore(object.RegularSnapshot{TS: rs.TS, History: rs.History, TSR: rs.TSR})
	}
}

func (s *regStore) Forget() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs = make(map[string]*object.Regular)
}

// seed installs a write history of ts entries into register reg: the
// state an object holds after receiving writes 1..ts, with the newest
// write complete.
func seed(s *regStore, reg string, ts types.TS) {
	h := types.NewHistory()
	prev := types.WTuple{TSVal: types.InitTSVal(), TSR: types.NewTSRMatrix()}
	for t := types.TS(1); t <= ts; t++ {
		w := types.WTuple{TSVal: types.TSVal{TS: t, Val: types.Value("v" + reg)}, TSR: types.NewTSRMatrix()}
		h[t-1] = types.HistEntry{PW: prev.TSVal.Clone(), W: &prev}
		h[t] = types.HistEntry{PW: w.TSVal.Clone(), W: &w}
		prev = w
	}
	s.get(reg).Restore(object.RegularSnapshot{TS: ts, History: h, TSR: types.NewTSRVector(s.readers)})
}

func maxTS(s *regStore, reg string) types.TS {
	return s.get(reg).Snapshot().TS
}

// TestGuardFencesUntilInstall: a forgotten guard answers nothing — no
// protocol message (quorum exclusion) and no StateReq (nothing to
// donate) — until Install lifts the fence, after which replies carry
// the bumped incarnation.
func TestGuardFencesUntilInstall(t *testing.T) {
	st := newRegStore(0, 1)
	g := recovery.NewGuard(0, st, st)
	read := wire.RegOp{Reg: "a", Msg: wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1}}

	reply, ok := g.Handle(transport.Reader(0), read)
	if !ok {
		t.Fatal("healthy guard must answer reads")
	}
	ep, isEp := reply.(wire.Epoch)
	if !isEp || ep.Inc != 0 {
		t.Fatalf("healthy reply not epoch-0-stamped: %+v", reply)
	}

	g.Forget()
	if !g.Fenced() {
		t.Fatal("Forget must fence")
	}
	if g.Incarnation() != 1 {
		t.Fatalf("incarnation after Forget: %d", g.Incarnation())
	}
	if _, ok := g.Handle(transport.Reader(0), wire.RegOp{Reg: "a", Msg: wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 2}}); ok {
		t.Fatal("fenced guard answered a protocol message")
	}
	if _, ok := g.Handle(transport.Recovery(1), wire.StateReq{Seq: 1, Requester: 1}); ok {
		t.Fatal("fenced guard donated state")
	}

	if !g.Install([]wire.RegState{{Reg: "a", TS: 0, History: types.NewHistory(), TSR: types.NewTSRVector(1)}}, 1, nil) {
		t.Fatal("install at the current incarnation must succeed")
	}
	if g.Fenced() {
		t.Fatal("install must lift the fence")
	}
	reply, ok = g.Handle(transport.Reader(0), wire.RegOp{Reg: "a", Msg: wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 3}})
	if !ok {
		t.Fatal("recovered guard must answer reads")
	}
	if ep := reply.(wire.Epoch); ep.Inc != 1 {
		t.Fatalf("recovered reply carries incarnation %d, want 1", ep.Inc)
	}
}

// TestGuardSuppressesReplyComputedAcrossForget: a Forget that lands
// while the inner handler is computing a reply must suppress that
// reply — it was derived from (partially) wiped state but would carry
// the pre-crash incarnation, which clients still accept.
func TestGuardSuppressesReplyComputedAcrossForget(t *testing.T) {
	st := newRegStore(0, 1)
	var g *recovery.Guard
	inner := transport.HandlerFunc(func(from transport.NodeID, req wire.Msg) (wire.Msg, bool) {
		g.Forget() // the amnesia restart races the in-flight request
		return st.Handle(from, req)
	})
	g = recovery.NewGuard(0, st, inner)
	read := wire.RegOp{Reg: "a", Msg: wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1}}
	if reply, ok := g.Handle(transport.Reader(0), read); ok {
		t.Fatalf("reply computed across a Forget escaped: %+v", reply)
	}
	if !g.Fenced() || g.Incarnation() != 1 {
		t.Fatalf("forget lost: fenced=%v inc=%d", g.Fenced(), g.Incarnation())
	}
}

// TestGuardInstallRejectsStaleIncarnation: a second amnesia crash
// mid-collection supersedes the pending install.
func TestGuardInstallRejectsStaleIncarnation(t *testing.T) {
	st := newRegStore(0, 1)
	g := recovery.NewGuard(0, st, st)
	g.Forget() // inc 1
	g.Forget() // inc 2 — the catch-up below was collected for inc 1
	if g.Install(nil, 1, nil) {
		t.Fatal("install for a superseded incarnation must be rejected")
	}
	if !g.Fenced() {
		t.Fatal("rejected install must keep the fence up")
	}
	if !g.Install(nil, 2, nil) {
		t.Fatal("install at the live incarnation must succeed")
	}
}

// TestGuardStateRespCarriesSnapshot: a healthy guard donates its full
// register set with its incarnation.
func TestGuardStateRespCarriesSnapshot(t *testing.T) {
	st := newRegStore(2, 1)
	seed(st, "a", 4)
	seed(st, "b", 9)
	g := recovery.NewGuard(2, st, st)
	reply, ok := g.Handle(transport.Recovery(0), wire.StateReq{Seq: 7, Requester: 0})
	if !ok {
		t.Fatal("healthy guard must donate state")
	}
	resp := reply.(wire.StateResp)
	if resp.ObjectID != 2 || resp.Seq != 7 || resp.Incarnation != 0 {
		t.Fatalf("bad response header: %+v", resp)
	}
	if len(resp.Regs) != 2 {
		t.Fatalf("donated %d registers, want 2", len(resp.Regs))
	}
}

// TestDominantMerge: per register the highest-timestamp donor wins;
// registers unknown to some donors still recover.
func TestDominantMerge(t *testing.T) {
	mk := func(id types.ObjectID, reg string, ts types.TS) wire.StateResp {
		s := newRegStore(id, 1)
		seed(s, reg, ts)
		return wire.StateResp{ObjectID: id, Regs: s.SnapshotRegs()}
	}
	merged := recovery.Dominant([]wire.StateResp{
		mk(1, "a", 5),
		mk(2, "a", 7),
		mk(3, "b", 2),
	})
	if len(merged) != 2 {
		t.Fatalf("merged %d registers, want 2", len(merged))
	}
	byReg := map[string]wire.RegState{}
	for _, rs := range merged {
		byReg[rs.Reg] = rs
	}
	if byReg["a"].TS != 7 {
		t.Fatalf("register a merged at ts %d, want the dominant 7", byReg["a"].TS)
	}
	if byReg["b"].TS != 2 {
		t.Fatalf("register b merged at ts %d, want 2", byReg["b"].TS)
	}
	// The dominant donor's history must contain the latest complete
	// write (the freshness invariant the whole subsystem rests on).
	if e, ok := byReg["a"].History[7]; !ok || e.W == nil {
		t.Fatal("dominant history lacks the complete tuple at its top timestamp")
	}
}

// TestManagerCatchUpOverMemnet is the end-to-end protocol test: four
// guarded objects on memnet (t = b = 1, so quorum t+b+1 = 3), object 0
// forgets, and its manager rebuilds the dominant state from the three
// siblings while the test only observes public surfaces.
func TestManagerCatchUpOverMemnet(t *testing.T) {
	net := memnet.New()
	defer net.Close()

	stores := make([]*regStore, 4)
	guards := make([]*recovery.Guard, 4)
	for i := range stores {
		stores[i] = newRegStore(types.ObjectID(i), 1)
		guards[i] = recovery.NewGuard(types.ObjectID(i), stores[i], stores[i])
		if err := net.Serve(transport.Object(types.ObjectID(i)), guards[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Distinct per-sibling freshness: the dominant donor for "a" is
	// object 2 (ts 7), for "b" object 3 (ts 6).
	seed(stores[1], "a", 5)
	seed(stores[2], "a", 7)
	seed(stores[3], "a", 3)
	seed(stores[1], "b", 4)
	seed(stores[3], "b", 6)
	seed(stores[0], "a", 7) // the state about to be lost

	conn, err := net.Register(transport.Recovery(0))
	if err != nil {
		t.Fatal(err)
	}
	siblings := []transport.NodeID{transport.Object(1), transport.Object(2), transport.Object(3)}
	mgr := recovery.NewManager(guards[0], conn, siblings, recovery.Policy{}.WithDefaults(1, 1))
	defer mgr.Close()

	guards[0].Forget()
	deadline := time.Now().Add(10 * time.Second)
	for guards[0].Fenced() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if guards[0].Fenced() {
		t.Fatal("catch-up did not complete")
	}
	if got := maxTS(stores[0], "a"); got != 7 {
		t.Fatalf("register a recovered at ts %d, want dominant 7", got)
	}
	if got := maxTS(stores[0], "b"); got != 6 {
		t.Fatalf("register b recovered at ts %d, want dominant 6", got)
	}
	s := mgr.Stats()
	if s.CatchUps != 1 || s.RegsRestored != 2 {
		t.Fatalf("manager stats: %+v", s)
	}

	// The recovered object serves again, at the new incarnation.
	reply, ok := guards[0].Handle(transport.Reader(0), wire.RegOp{Reg: "a", Msg: wire.ReadReq{Round: wire.Round1, Reader: 0, TSR: 1}})
	if !ok {
		t.Fatal("recovered object does not serve")
	}
	if ep := reply.(wire.Epoch); ep.Inc != 1 {
		t.Fatalf("recovered reply at incarnation %d, want 1", ep.Inc)
	}
}

// TestManagerRetriesUntilQuorum: with one sibling permanently silent
// and quorum 2, the manager still completes using the other sibling
// plus re-broadcasts (responses to the first broadcast are dropped by
// serving the sibling only after a delay).
func TestManagerRetriesUntilQuorum(t *testing.T) {
	net := memnet.New()
	defer net.Close()

	st0 := newRegStore(0, 1)
	g0 := recovery.NewGuard(0, st0, st0)
	if err := net.Serve(transport.Object(0), g0); err != nil {
		t.Fatal(err)
	}
	st1 := newRegStore(1, 1)
	g1 := recovery.NewGuard(1, st1, st1)
	seed(st1, "a", 3)
	if err := net.Serve(transport.Object(1), g1); err != nil {
		t.Fatal(err)
	}
	// Object 2 exists only later: the first broadcasts to it vanish
	// (unknown destination = forever in transit), forcing retries.
	st2 := newRegStore(2, 1)
	g2 := recovery.NewGuard(2, st2, st2)
	seed(st2, "a", 8)

	conn, err := net.Register(transport.Recovery(0))
	if err != nil {
		t.Fatal(err)
	}
	policy := recovery.Policy{Quorum: 2, Retry: 10 * time.Millisecond}
	mgr := recovery.NewManager(g0, conn, []transport.NodeID{transport.Object(1), transport.Object(2)}, policy)
	defer mgr.Close()

	g0.Forget()
	time.Sleep(50 * time.Millisecond) // several retry rounds with only one donor
	if !g0.Fenced() {
		t.Fatal("catch-up completed below quorum")
	}
	if err := net.Serve(transport.Object(2), g2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g0.Fenced() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g0.Fenced() {
		t.Fatal("catch-up did not complete after the second donor appeared")
	}
	if got := maxTS(st0, "a"); got != 8 {
		t.Fatalf("recovered at ts %d, want dominant 8", got)
	}
}
