// Package recovery is the amnesia catch-up subsystem: it lets a base
// object that restarts with EMPTY volatile state (crash-recovery
// without stable storage) rebuild its registers from a quorum of shard
// siblings and rejoin the read/write quorums, instead of permanently
// counting against the fault budget t.
//
// The paper's model (§2) assumes a faulty base object either stays down
// or comes back with its state intact; real deployments restart with
// amnesia. The standard cure (cf. the crash-recovery treatments in
// Aspnes's distributed-systems notes) is a state-transfer protocol run
// BEFORE the object resumes serving:
//
//  1. An amnesia restart wipes the object's registers and bumps its
//     incarnation epoch (Guard.Forget, driven by the transport's
//     RestartAmnesia). The object is now FENCED: it answers no protocol
//     message, so clients — who proceed with any S−t replies — simply
//     stop counting it toward quorums.
//  2. The object's Manager broadcasts wire.StateReq to every sibling
//     over its own client endpoint (base objects never talk to each
//     other in the data-centric model, so recovery speaks through a
//     transport.Recovery endpoint) and collects wire.StateResp
//     snapshots until Policy.Quorum distinct siblings have answered.
//  3. The responses are merged timestamp-dominantly per register
//     (Dominant) and installed atomically (Guard.Install); only then is
//     the fence lifted and the object serves again — stamping every
//     reply with its new incarnation so stragglers from the previous
//     life are rejected as stale.
//
// Freshness argument: a completed write occupies a quorum of S−t =
// t+b+1 objects. Any Policy.Quorum = t+b+1 responses out of the 2t+b
// siblings intersect that write quorum (minus the recovering object
// itself, ≥ t+b members) in at least one HONEST object, whose snapshot
// timestamp-dominates the write; the regular object's PW rule keeps the
// previous write's complete tuple in history[ts−1], so the dominant
// donor state always contains the latest completed write. Installing a
// fresh honest state is always safe — it is indistinguishable from the
// object having received exactly those protocol messages itself.
//
// Availability: with Faulty + Byzantine ≤ t and the recovering object
// inside the faulty set, at least S−1−(Faulty−1)−Byz ≥ t+b+1 honest
// siblings are permanently up, so a catch-up always completes. In this
// repository Byzantine objects do not answer StateReq (they forge
// protocol replies, not recovery donations); deployments that admit
// LYING donors can enable Policy.CrossValidate, which installs a
// history row or reader-timestamp entry only when b+1 distinct donors
// agree on it byte for byte (Validated) — a forged donation can never
// gather b+1 vouchers. See Policy.CrossValidate for the quorum-size
// conditions under which every completed write keeps its b+1 honest
// vouchers too.
//
// The membership subsystem (internal/membership, internal/store)
// reuses this protocol for live replacement: a replacement object is an
// amnesia recovery at a new address, catching up from an explicit donor
// list — the members of the OLD configuration — rather than a fixed
// sibling set, which is why Manager's donor set is updatable
// (SetSiblings) and keyed by transport endpoint rather than object
// index.
package recovery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Policy is the deployment's recovery configuration (store.Options
// carries one; the zero value selects every default).
type Policy struct {
	// Quorum is how many distinct sibling snapshots a catch-up collects
	// before installing state. Zero selects t+b+1 — always reachable
	// within the fault budget, and enough for the dominant merge to
	// contain the latest completed write (see the package comment).
	Quorum int
	// Retry is the re-broadcast interval for catch-up queries whose
	// responses are lost or delayed in transit. Zero selects 25ms.
	Retry time.Duration
	// CrossValidate hardens catch-up against Byzantine state donors:
	// instead of trusting the timestamp-dominant merge blindly, every
	// history row and reader-timestamp entry is installed only when
	// Vouchers distinct donors agree on it byte for byte (Validated), so
	// a lying donor can never smuggle a forged row or an inflated
	// timestamp into the recovering object — integrity holds
	// unconditionally. Freshness is conditional on the quorum: a
	// completed write occupies t+b+1 of the 2t+b siblings, so Quorum
	// collected donations intersect its holders in Quorum−(t−1)−b
	// entries — at the default Quorum = t+b+1 that is b+1 copies, all
	// honest when Byzantine objects are donation-silent (this
	// repository's adversary: they forge protocol replies, not
	// StateResp), so every completed write stays vouchable. Against
	// donors that ANSWER and selectively omit rows, b of those b+1
	// copies may be withheld; raise Quorum to t+2b+1 to guarantee b+1
	// honest copies of every completed write regardless — collectible
	// out of the 2t+b siblings when b < t, BECAUSE in that threat model
	// the liars answer and count toward collection. (A deployment whose
	// Byzantine objects are donation-silent, like internal/store's,
	// neither needs nor can collect the larger quorum — Open's
	// honest-donor check will say so.) Off by default; Vouchers must
	// not exceed Quorum or no entry could ever be vouched
	// (internal/store's Open rejects that).
	CrossValidate bool
	// Vouchers is the agreement threshold of CrossValidate. Zero selects
	// b+1: more agreeing donors than there are possible liars.
	Vouchers int
}

// WithDefaults fills zero fields for a shard with fault budgets t, b.
func (p Policy) WithDefaults(t, b int) Policy {
	if p.Quorum <= 0 {
		p.Quorum = t + b + 1
	}
	if p.Retry <= 0 {
		p.Retry = 25 * time.Millisecond
	}
	if p.CrossValidate && p.Vouchers <= 0 {
		p.Vouchers = b + 1
	}
	return p
}

// Stats counts recovery activity (Store.RecoveryStats aggregates it).
type Stats struct {
	CatchUps     int64 // completed catch-ups (state installed, fence lifted)
	RegsRestored int64 // registers installed across all catch-ups
	Superseded   int64 // catch-up attempts abandoned by a newer amnesia crash
}

// Add returns the fieldwise sum.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		CatchUps:     s.CatchUps + o.CatchUps,
		RegsRestored: s.RegsRestored + o.RegsRestored,
		Superseded:   s.Superseded + o.Superseded,
	}
}

// StateStore is the volatile register state of one multi-register base
// object — the surface the catch-up protocol snapshots, wipes, and
// restores. internal/store's registry implements it over
// object.Regular's Snapshot/Restore hooks.
type StateStore interface {
	// SnapshotRegs deep-copies every register's state.
	SnapshotRegs() []wire.RegState
	// RestoreRegs overwrites (or creates) the named registers with the
	// given states, deep-copying its input.
	RestoreRegs(regs []wire.RegState)
	// Forget wipes every register.
	Forget()
}

// Guard wraps a base object's handler with the recovery automaton:
// incarnation epochs on every reply, the catch-up fence, and StateReq
// service for recovering peers. It implements transport.Handler and
// transport.Amnesiac, so the transports' RestartAmnesia reaches Forget
// through any wrapping (batching included).
type Guard struct {
	id    types.ObjectID
	store StateStore
	inner transport.Handler

	mu     sync.Mutex
	inc    int64
	fenced bool

	wake chan struct{} // signals the Manager that a catch-up is due
}

var (
	_ transport.Handler  = (*Guard)(nil)
	_ transport.Amnesiac = (*Guard)(nil)
)

// NewGuard wraps inner (the object's protocol handler) and store (its
// register state, typically the same value) for object id.
func NewGuard(id types.ObjectID, store StateStore, inner transport.Handler) *Guard {
	return &Guard{id: id, store: store, inner: inner, wake: make(chan struct{}, 1)}
}

// ID returns the guarded object's index.
func (g *Guard) ID() types.ObjectID { return g.id }

// Incarnation returns the current epoch (bumped by every amnesia wipe).
func (g *Guard) Incarnation() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inc
}

// Fenced reports whether the object is excluded from quorums pending
// catch-up.
func (g *Guard) Fenced() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fenced
}

// Wake is the channel the owning Manager selects on; it fires (capacity
// one, coalescing) after every Forget.
func (g *Guard) Wake() <-chan struct{} { return g.wake }

// Handle implements the recovery automaton around the inner handler:
//
//   - fenced: answer nothing — neither protocol messages (the fence
//     that keeps a stale object out of quorums) nor StateReq (an
//     amnesiac object has no state to donate);
//   - StateReq: donate a snapshot of every register, tagged with the
//     current incarnation;
//   - anything else: delegate to the inner handler and stamp the reply
//     with the current incarnation (wire.Epoch), so replies minted in a
//     previous life are recognizably stale.
func (g *Guard) Handle(from transport.NodeID, req wire.Msg) (wire.Msg, bool) {
	g.mu.Lock()
	if g.fenced {
		g.mu.Unlock()
		return nil, false
	}
	inc := g.inc
	g.mu.Unlock()
	var reply wire.Msg
	if m, ok := req.(wire.StateReq); ok {
		reply = wire.StateResp{ObjectID: g.id, Seq: m.Seq, Incarnation: inc, Regs: g.store.SnapshotRegs()}
	} else {
		inner, ok := g.inner.Handle(from, req)
		if !ok {
			return nil, false
		}
		reply = wire.Epoch{Inc: inc, Msg: inner}
	}
	// A Forget can race the computation above: the reply would then be
	// derived from (partially) wiped state yet stamped with the
	// pre-crash incarnation — which clients still accept, because the
	// object has not served anything at the new incarnation yet.
	// Re-check under the lock and suppress the reply if the life it was
	// minted in is over; the request is simply never answered, which the
	// asynchronous model already permits.
	g.mu.Lock()
	superseded := g.inc != inc || g.fenced
	g.mu.Unlock()
	if superseded {
		return nil, false
	}
	return reply, true
}

// Forget is the amnesia restart: bump the incarnation, raise the fence,
// wipe the registers, and wake the Manager. Safe to call concurrently
// with Handle — a reply computed across the wipe is suppressed by
// Handle's post-computation incarnation re-check, and a reply already
// on the wire carries its pre-crash incarnation and reflects genuine
// pre-crash state (clients reject it only once the recovered object
// has served at the new incarnation — the wire.Epoch fencing).
func (g *Guard) Forget() {
	g.mu.Lock()
	g.inc++
	g.fenced = true
	g.mu.Unlock()
	g.store.Forget()
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// Install commits a merged catch-up state and lifts the fence, provided
// the object is still in the incarnation the catch-up was collected
// for; a newer amnesia crash supersedes the attempt (returns false) and
// the Manager starts over. A non-nil committed runs under the guard
// lock after the state lands but BEFORE the fence lifts, so bookkeeping
// (the Manager's counters) is already visible when observers see the
// object recovered.
func (g *Guard) Install(regs []wire.RegState, inc int64, committed func()) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inc != inc || !g.fenced {
		return false
	}
	g.store.RestoreRegs(regs)
	if committed != nil {
		committed()
	}
	g.fenced = false
	return true
}

// Dominant merges sibling snapshots timestamp-dominantly: per register,
// the snapshot with the highest timestamp wins (ties go to the longer
// history, then to the lower object index — a pure function of the
// response set, so concurrent recoveries converge). The result is
// sorted by register name for determinism.
func Dominant(resps []wire.StateResp) []wire.RegState {
	ordered := append([]wire.StateResp(nil), resps...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].ObjectID < ordered[b].ObjectID })
	best := make(map[string]wire.RegState)
	for _, resp := range ordered {
		for _, rs := range resp.Regs {
			cur, seen := best[rs.Reg]
			if !seen || rs.TS > cur.TS || (rs.TS == cur.TS && len(rs.History) > len(cur.History)) {
				best[rs.Reg] = rs
			}
		}
	}
	out := make([]wire.RegState, 0, len(best))
	for _, rs := range best {
		out = append(out, rs)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Reg < out[b].Reg })
	return out
}

// Validated merges sibling snapshots with per-entry cross-validation:
// a history row is installed only when at least vouchers distinct
// donors present an identical copy, and each reader-timestamp entry is
// the largest value at least vouchers donors reach. With at most
// vouchers−1 lying donors, nothing forged survives — a fabricated row
// or an inflated timestamp can never gather vouchers agreeing copies.
// Completed writes survive when the collected quorum carries vouchers
// honest copies of them (see Policy.CrossValidate for the exact
// quorum-size conditions); the regular object's PW rule writes
// history[ts] and history[ts−1] together, so the vouched state always
// carries a complete tuple at its top timestamp or the one below — the
// automaton invariant Install relies on.
//
// The installed timestamp is the newest vouched row's; unvouched rows
// above it (a lone donor's in-flight pre-write, or a lie) are dropped,
// which is indistinguishable from the object never having received
// those messages. Like Dominant, the result is a pure function of the
// response set, sorted by register name.
func Validated(resps []wire.StateResp, vouchers int) []wire.RegState {
	if vouchers <= 1 {
		return Dominant(resps)
	}
	type rowVote struct {
		entry types.HistEntry
		count int
	}
	type regVotes struct {
		rows map[types.TS][]rowVote
		tsrs []types.TSRVector
	}
	regs := make(map[string]*regVotes)
	for _, resp := range resps {
		// One vote per donor per register: a lying donor listing the
		// same register twice in one donation must not stuff the ballot
		// with its own duplicates.
		voted := make(map[string]bool, len(resp.Regs))
		for _, rs := range resp.Regs {
			if voted[rs.Reg] {
				continue
			}
			voted[rs.Reg] = true
			rv := regs[rs.Reg]
			if rv == nil {
				rv = &regVotes{rows: make(map[types.TS][]rowVote)}
				regs[rs.Reg] = rv
			}
			for ts, entry := range rs.History {
				votes := rv.rows[ts]
				matched := false
				for i := range votes {
					if votes[i].entry.Equal(entry) {
						votes[i].count++
						matched = true
						break
					}
				}
				if !matched {
					votes = append(votes, rowVote{entry: entry.Clone(), count: 1})
				}
				rv.rows[ts] = votes
			}
			rv.tsrs = append(rv.tsrs, rs.TSR)
		}
	}
	out := make([]wire.RegState, 0, len(regs))
	for name, rv := range regs {
		st := wire.RegState{Reg: name, History: make(types.History)}
		for ts, votes := range rv.rows {
			for _, v := range votes {
				if v.count >= vouchers {
					st.History[ts] = v.entry
					if ts > st.TS {
						st.TS = ts
					}
					break
				}
			}
		}
		if len(st.History) == 0 {
			continue // no vouched row at all: the register stays unborn
		}
		// Per-reader vouched maximum: the vouchers-th largest value —
		// the highest timestamp at least vouchers donors reach, so a
		// single liar can neither inflate nor (with honest donors in the
		// majority) deflate it below something b+1 donors have seen.
		width := 0
		for _, v := range rv.tsrs {
			if len(v) > width {
				width = len(v)
			}
		}
		if width > 0 {
			st.TSR = types.NewTSRVector(width)
			column := make([]types.ReaderTS, 0, len(rv.tsrs))
			for j := 0; j < width; j++ {
				column = column[:0]
				for _, v := range rv.tsrs {
					if j < len(v) {
						column = append(column, v[j])
					}
				}
				sort.Slice(column, func(a, b int) bool { return column[a] > column[b] })
				if len(column) >= vouchers {
					st.TSR[j] = column[vouchers-1]
				}
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Reg < out[b].Reg })
	return out
}

// Manager drives one object's catch-ups: it owns the object's recovery
// endpoint (transport.Recovery(id)) and, on every Guard wake, runs the
// state-transfer protocol to completion. Create with NewManager, stop
// with Close. The donor set is updatable (SetSiblings) so a
// reconfiguration can retarget catch-up at the members of a new
// configuration.
type Manager struct {
	guard  *Guard
	conn   transport.Conn
	policy Policy

	smu      sync.Mutex
	siblings []transport.NodeID

	seq                           atomic.Int64
	catchUps, regsRestored, stale atomic.Int64

	// trace, when set, records fence-wait/fence-lift events on the
	// deployment's op tracer (atomic: the store wires it after the run
	// loop is already live).
	trace atomic.Pointer[traceSink]

	closeOnce sync.Once
	done      chan struct{}
	finished  chan struct{}
}

// traceSink binds a tracer to the shard coordinate the events report.
type traceSink struct {
	tr    *obs.Tracer
	shard int
}

// SetTrace attaches the deployment's op tracer: every catch-up attempt
// becomes an op with a fence-wait event when the state transfer starts
// and a fence-lift event when the merged state installs (a superseded
// attempt gets no lift; the next attempt is a fresh op). Safe to call
// concurrently with a running catch-up.
func (m *Manager) SetTrace(tr *obs.Tracer, shard int) {
	if tr == nil {
		m.trace.Store(nil)
		return
	}
	m.trace.Store(&traceSink{tr: tr, shard: shard})
}

// NewManager starts the catch-up loop for guard. conn must be a client
// endpoint of the object's network (conventionally
// transport.Recovery(guard.ID())); siblings are the transport addresses
// of the objects that donate state — the shard's other base objects,
// or, for a replacement object, the members of the configuration being
// superseded. The policy should already carry deployment defaults
// (Policy.WithDefaults).
func NewManager(guard *Guard, conn transport.Conn, siblings []transport.NodeID, policy Policy) *Manager {
	m := &Manager{
		guard:    guard,
		conn:     conn,
		siblings: append([]transport.NodeID(nil), siblings...),
		policy:   policy,
		done:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	go m.run()
	return m
}

// SetSiblings replaces the donor set — how a reconfiguration retargets
// future catch-ups at the members of the new configuration (an evicted
// address would never answer, and at small deployments the remaining
// old members alone cannot reach the quorum). A catch-up already in
// flight re-broadcasts to the new set on its next retry; donations
// already collected stay counted, which is safe — they were genuine
// member state when donated.
func (m *Manager) SetSiblings(siblings []transport.NodeID) {
	m.smu.Lock()
	defer m.smu.Unlock()
	m.siblings = append([]transport.NodeID(nil), siblings...)
}

// siblingSet snapshots the donor set.
func (m *Manager) siblingSet() []transport.NodeID {
	m.smu.Lock()
	defer m.smu.Unlock()
	return append([]transport.NodeID(nil), m.siblings...)
}

// Stats returns this manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		CatchUps:     m.catchUps.Load(),
		RegsRestored: m.regsRestored.Load(),
		Superseded:   m.stale.Load(),
	}
}

// Recovering reports whether the guarded object is currently fenced.
func (m *Manager) Recovering() bool { return m.guard.Fenced() }

// Close stops the loop and releases the recovery endpoint. Idempotent
// and safe for concurrent use (Store.Close is a public API).
func (m *Manager) Close() error {
	m.closeOnce.Do(func() { close(m.done) })
	err := m.conn.Close()
	<-m.finished
	return err
}

// run services wake signals until Close (or the network) shuts the
// endpoint down.
func (m *Manager) run() {
	defer close(m.finished)
	for {
		select {
		case <-m.done:
			return
		case <-m.guard.Wake():
			if !m.catchUp() {
				return
			}
		}
	}
}

// catchUp runs one state transfer: broadcast StateReq, collect
// Policy.Quorum distinct sibling snapshots (re-broadcasting every
// Policy.Retry — responses may be delayed, duplicated, or lost while a
// sibling is inside its own fault window), merge dominantly, install.
// Returns false when the endpoint is closed (shutting down). A Forget
// racing the collection bumps the incarnation; the install is then
// rejected and the next wake signal redoes the transfer.
func (m *Manager) catchUp() bool {
	inc := m.guard.Incarnation()
	seq := m.seq.Add(1)
	var op uint64
	sink := m.trace.Load()
	if sink != nil {
		op = sink.tr.NewOp()
		sink.tr.Record(obs.Event{
			Op: op, Kind: obs.EvFenceWait, Shard: sink.shard,
			Member: int(m.guard.ID()),
			Detail: fmt.Sprintf("inc=%d quorum=%d", inc, m.policy.Quorum),
		})
	}
	req := wire.StateReq{Seq: seq, Requester: m.guard.ID()}
	// Donors are deduplicated by transport endpoint, not by claimed
	// object index: after a reconfiguration, distinct members may live
	// at addresses that no longer equal their logical slots, and a lying
	// donor must not be able to impersonate a second one by forging the
	// ObjectID field of its response.
	got := make(map[transport.NodeID]wire.StateResp)
	// Each (re-)broadcast queries only the siblings still missing from
	// the quorum: an already-counted donor would just re-snapshot and
	// re-ship its whole registry for the dedup map to discard. The donor
	// set is re-read every time so a reconfiguration mid-collection
	// retargets the remaining queries.
	broadcast := func() {
		for _, sib := range m.siblingSet() {
			if _, answered := got[sib]; !answered {
				m.conn.Send(sib, req)
			}
		}
	}
	broadcast()
	for len(got) < m.policy.Quorum {
		if m.guard.Incarnation() != inc {
			m.stale.Add(1)
			return true // superseded: the next wake redoes it
		}
		ctx, cancel := context.WithTimeout(context.Background(), m.policy.Retry)
		msg, err := m.conn.Recv(ctx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				broadcast()
				continue
			}
			return false // endpoint closed
		}
		resp, ok := msg.Payload.(wire.StateResp)
		if !ok || resp.Seq != seq {
			continue // stale attempt, duplicate, or foreign traffic
		}
		got[msg.From] = resp
	}
	resps := make([]wire.StateResp, 0, len(got))
	for _, resp := range got {
		resps = append(resps, resp)
	}
	var merged []wire.RegState
	if m.policy.CrossValidate {
		merged = Validated(resps, m.policy.Vouchers)
	} else {
		merged = Dominant(resps)
	}
	installed := m.guard.Install(merged, inc, func() {
		m.catchUps.Add(1)
		m.regsRestored.Add(int64(len(merged)))
	})
	if !installed {
		m.stale.Add(1)
	} else if sink != nil {
		sink.tr.Record(obs.Event{
			Op: op, Kind: obs.EvFenceLift, Shard: sink.shard,
			Member: int(m.guard.ID()),
			Detail: fmt.Sprintf("regs=%d", len(merged)),
		})
	}
	return true
}
