package recovery_test

import (
	"testing"
	"time"

	"repro/internal/recovery"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// honestState renders the snapshot an honest object holds after writes
// 1..ts of register reg.
func honestState(reg string, ts types.TS, readers int) wire.RegState {
	s := newRegStore(0, readers)
	seed(s, reg, ts)
	snap := s.get(reg).Snapshot()
	return wire.RegState{Reg: reg, TS: snap.TS, History: snap.History, TSR: snap.TSR}
}

// forgedState is a lying donor's donation for reg: an inflated
// timestamp with a fabricated value and reader-timestamp vector.
func forgedState(reg string, readers int) wire.RegState {
	w := types.WTuple{TSVal: types.TSVal{TS: 999, Val: types.Value("FORGED")}, TSR: types.NewTSRMatrix()}
	tsr := types.NewTSRVector(readers)
	for j := range tsr {
		tsr[j] = 1 << 40
	}
	return wire.RegState{
		Reg: reg,
		TS:  999,
		History: types.History{
			998: {PW: w.TSVal.Clone(), W: &w},
			999: {PW: w.TSVal.Clone(), W: &w},
		},
		TSR: tsr,
	}
}

// TestValidatedRejectsLyingDonor: with per-entry b+1 cross-validation,
// a single lying donor in the collected quorum cannot smuggle a forged
// row, an inflated timestamp, or an inflated reader-timestamp vector
// into the install — while every row the honest donors agree on
// survives, including the newest completed write.
func TestValidatedRejectsLyingDonor(t *testing.T) {
	const readers = 2
	honest := honestState("x", 3, readers)
	resps := []wire.StateResp{
		{ObjectID: 1, Regs: []wire.RegState{honest.Clone()}},
		{ObjectID: 2, Regs: []wire.RegState{honest.Clone()}},
		{ObjectID: 3, Regs: []wire.RegState{forgedState("x", readers), forgedState("phantom", readers)}},
	}

	// Blind dominant merge would install the forgery — the regression
	// the hardening closes.
	blind := recovery.Dominant(resps)
	if len(blind) == 0 || blind[0].TS != 999 {
		t.Fatalf("precondition: dominant merge no longer trusts the liar (got %+v)", blind)
	}

	merged := recovery.Validated(resps, 2) // b+1 with b = 1
	if len(merged) != 1 {
		t.Fatalf("validated merge installed %d registers, want only x: %+v", len(merged), merged)
	}
	st := merged[0]
	if st.Reg != "x" {
		t.Fatalf("validated merge kept %q — the liar's phantom register must not be born", st.Reg)
	}
	if st.TS != honest.TS {
		t.Fatalf("validated ts %d, want the honest %d", st.TS, honest.TS)
	}
	if _, forged := st.History[999]; forged {
		t.Fatal("forged history row installed")
	}
	for ts, entry := range honest.History {
		got, ok := st.History[ts]
		if !ok || !got.Equal(entry) {
			t.Fatalf("honest row at ts %d lost or mutated", ts)
		}
	}
	for j, v := range st.TSR {
		if v != honest.TSR[j] {
			t.Fatalf("tsr[%d] = %d, want the honest %d (liar inflated it)", j, v, honest.TSR[j])
		}
	}
}

// TestValidatedOneVotePerDonorPerRegister: a lying donor cannot stuff
// the ballot by listing the same forged register twice in one donation
// — duplicates within a response count as one voucher, so the forgery
// still dies below the b+1 threshold.
func TestValidatedOneVotePerDonorPerRegister(t *testing.T) {
	const readers = 1
	honest := honestState("x", 3, readers)
	forged := forgedState("x", readers)
	resps := []wire.StateResp{
		{ObjectID: 1, Regs: []wire.RegState{honest.Clone()}},
		{ObjectID: 2, Regs: []wire.RegState{honest.Clone()}},
		// The liar presents its forgery twice in the SAME response.
		{ObjectID: 3, Regs: []wire.RegState{forged.Clone(), forged.Clone()}},
	}
	merged := recovery.Validated(resps, 2)
	if len(merged) != 1 || merged[0].TS != honest.TS {
		t.Fatalf("validated merge %+v, want only the honest state at ts %d", merged, honest.TS)
	}
	if _, bad := merged[0].History[999]; bad {
		t.Fatal("duplicated forgery within one donation gathered b+1 vouchers")
	}
	for j, v := range merged[0].TSR {
		if v != honest.TSR[j] {
			t.Fatalf("tsr[%d] = %d inflated by the duplicated donation", j, v)
		}
	}
}

// TestValidatedKeepsFreshCompletedWrite: quorum intersection in
// miniature — when only b+1 of the donors have the newest completed
// write (the rest are one write behind), cross-validation still
// installs it: freshness is not sacrificed for safety.
func TestValidatedKeepsFreshCompletedWrite(t *testing.T) {
	fresh := honestState("y", 5, 1)
	stale := honestState("y", 4, 1)
	resps := []wire.StateResp{
		{ObjectID: 1, Regs: []wire.RegState{fresh.Clone()}},
		{ObjectID: 2, Regs: []wire.RegState{fresh.Clone()}},
		{ObjectID: 3, Regs: []wire.RegState{stale.Clone()}},
	}
	merged := recovery.Validated(resps, 2)
	if len(merged) != 1 || merged[0].TS != 5 {
		t.Fatalf("validated merge %+v, want ts 5 retained", merged)
	}
}

// TestValidatedSingleVoucherDegradesToDominant: vouchers ≤ 1 (b = 0)
// is exactly the dominant merge — no agreement to wait for.
func TestValidatedSingleVoucherDegradesToDominant(t *testing.T) {
	resps := []wire.StateResp{
		{ObjectID: 1, Regs: []wire.RegState{honestState("z", 2, 1)}},
		{ObjectID: 2, Regs: []wire.RegState{honestState("z", 3, 1)}},
	}
	dom := recovery.Dominant(resps)
	val := recovery.Validated(resps, 1)
	if len(dom) != len(val) || val[0].TS != dom[0].TS {
		t.Fatalf("vouchers=1 diverged from dominant: %+v vs %+v", val, dom)
	}
}

// lyingDonor is a base object that answers StateReq with forged state —
// the Byzantine state donor the CrossValidate policy defends against.
type lyingDonor struct {
	id      types.ObjectID
	readers int
}

func (d *lyingDonor) Handle(_ transport.NodeID, req wire.Msg) (wire.Msg, bool) {
	m, ok := req.(wire.StateReq)
	if !ok {
		return nil, false
	}
	return wire.StateResp{
		ObjectID: d.id,
		Seq:      m.Seq,
		Regs:     []wire.RegState{forgedState("a", d.readers), forgedState("phantom", d.readers)},
	}, true
}

// TestManagerCrossValidateSurvivesLyingDonor: the end-to-end catch-up
// with a lying donor in the quorum. Policy.CrossValidate on: the
// recovering object installs the honest, agreed state and none of the
// forgery — the regression test for the Byzantine-state-donor gap left
// open by the recovery subsystem's first cut.
func TestManagerCrossValidateSurvivesLyingDonor(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	const readers = 2

	// Recovering object 0; honest donors 1 and 2 (both at ts 4);
	// lying donor 3. Quorum 3 of the 3 siblings, so the liar is always
	// inside the collected set.
	rec := newRegStore(0, readers)
	seed(rec, "a", 4)
	guard := recovery.NewGuard(0, rec, rec)
	if err := net.Serve(transport.Object(0), guard); err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.ObjectID{1, 2} {
		donor := newRegStore(id, readers)
		seed(donor, "a", 4)
		// Honest donors answer StateReq through their own recovery
		// guards, like every guarded object in the store.
		if err := net.Serve(transport.Object(id), recovery.NewGuard(id, donor, donor)); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Serve(transport.Object(3), &lyingDonor{id: 3, readers: readers}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Register(transport.Recovery(0))
	if err != nil {
		t.Fatal(err)
	}
	siblings := []transport.NodeID{transport.Object(1), transport.Object(2), transport.Object(3)}
	policy := recovery.Policy{Quorum: 3, Retry: 5 * time.Millisecond, CrossValidate: true}.WithDefaults(1, 1)
	if policy.Vouchers != 2 {
		t.Fatalf("defaulted vouchers %d, want b+1 = 2", policy.Vouchers)
	}
	mgr := recovery.NewManager(guard, conn, siblings, policy)
	defer mgr.Close()

	guard.Forget() // amnesia: wipes ts 4, must rebuild from the donors
	deadline := time.Now().Add(10 * time.Second)
	for guard.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("catch-up with a lying donor never completed")
		}
		time.Sleep(time.Millisecond)
	}

	if got := maxTS(rec, "a"); got != 4 {
		t.Fatalf("recovered register a at ts %d, want the honest 4", got)
	}
	snap := rec.get("a").Snapshot()
	if _, forged := snap.History[999]; forged {
		t.Fatal("forged row installed despite cross-validation")
	}
	rec.mu.Lock()
	_, phantom := rec.regs["phantom"]
	rec.mu.Unlock()
	if phantom {
		t.Fatal("liar's phantom register was born")
	}
}
