// Package analysistest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest. It runs one analyzer over
// golden packages under testdata/src/<path> and checks reported diagnostics
// against `// want "regexp"` comments in the sources.
//
// Testdata packages may import only the standard library; they are
// type-checked with the source importer so no pre-compiled artifacts are
// needed. By convention the first element of <path> is the analyzer's name,
// which the framework treats as always in scope.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run analyzes each testdata package and asserts the diagnostics line up
// with the `// want` annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, a, pkgPath)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, path, src)...)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files", pkgPath)
	}

	info := load.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}

	diags, err := analysis.RunPackage(fset, files, tpkg, info, pkgPath, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", pkgPath, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Position, d.Message, d.Analyzer)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want "re" ["re" ...]` annotations, attributing
// each to the line the comment sits on.
func parseWants(t *testing.T, path string, src []byte) []*expectation {
	t.Helper()
	var wants []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, pat := range splitQuoted(m[1]) {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, re: re})
		}
	}
	return wants
}

// splitQuoted pulls out the double-quoted or backquoted segments of a want
// annotation.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[2+end:]
	}
}
