// Package ctxflow enforces context threading on blocking transport entry
// points: a Recv, Send, or dial must receive the caller's context so
// shutdown and deadlines propagate, not a raw context.Background() that
// can never be cancelled. (The PR 5 slow-object shedding and the
// membership-change close paths both rely on cancellation reaching
// in-flight Recv calls.)
//
// The rule: a context.Background() or context.TODO() value that flows
// RAW — directly, or via an intervening local variable — into a blocking
// call is flagged. Deriving a real context from it first
// (context.WithCancel, WithTimeout, ...) is legal: that is exactly how
// lifecycle roots are built. Package main is exempt (a process entry
// point has no caller context), and test files are excluded by the
// driver.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require blocking transport calls to thread a real context, not a raw context.Background()",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Locals holding a raw Background/TODO value.
	raw := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isRawContext(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					raw[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					raw[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := blockingCallee(call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if isRawContext(pass, arg) {
				pass.Reportf(arg.Pos(), "raw context passed to blocking %s; thread the caller's context (or derive one with context.WithCancel)", name)
				continue
			}
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && raw[obj] {
					pass.Reportf(arg.Pos(), "%s holds a raw context.Background() and is passed to blocking %s; thread the caller's context (or derive one with context.WithCancel)", id.Name, name)
				}
			}
		}
		return true
	})
}

// isRawContext reports whether expr is a direct context.Background() or
// context.TODO() call.
func isRawContext(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// blockingCallee reports the name of a blocking transport operation being
// called, if any.
func blockingCallee(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", false
	}
	if name == "Recv" || name == "Send" ||
		strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "dial") {
		return name, true
	}
	return "", false
}
