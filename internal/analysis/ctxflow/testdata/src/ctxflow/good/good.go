// Package good threads the caller's context, or derives a cancellable
// lifecycle root before blocking — both sanctioned.
package good

import (
	"context"
	"time"
)

type conn interface {
	Recv(ctx context.Context) (int, error)
	Send(ctx context.Context, v int) error
}

func pump(ctx context.Context, c conn) {
	for {
		if _, err := c.Recv(ctx); err != nil {
			return
		}
	}
}

func lifecycleRoot(c conn) (int, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return c.Recv(ctx)
}

func boundedRetry(c conn, d time.Duration) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.Recv(ctx)
}

// collectPipelinedAcks mirrors the pipelined writer's Flush: the
// deferred write-back acks of op N are drained with the CALLER's
// context, so a store shutdown or deadline can cancel the collection
// mid-drain.
func collectPipelinedAcks(ctx context.Context, c conn, quorum int) error {
	for n := 0; n < quorum; {
		if _, err := c.Recv(ctx); err != nil {
			return err
		}
		n++
	}
	return nil
}
