// Package bad passes raw, uncancellable contexts into blocking transport
// calls — the shape that made the pre-fix fault pump and mux dispatch
// unkillable.
package bad

import "context"

type conn interface {
	Recv(ctx context.Context) (int, error)
	Send(ctx context.Context, v int) error
}

func pump(c conn) {
	for {
		if _, err := c.Recv(context.Background()); err != nil { // want "raw context passed to blocking Recv"
			return
		}
	}
}

func dispatch(c conn) {
	ctx := context.Background()
	for {
		if _, err := c.Recv(ctx); err != nil { // want "raw context.Background"
			return
		}
	}
}

func fireAndForget(c conn, v int) error {
	return c.Send(context.TODO(), v) // want "raw context passed to blocking Send"
}

// collectPipelinedAcks drains deferred write-back acks on a raw
// context — the pipelined-collection shape that would hang shutdown if
// the quorum never completes.
func collectPipelinedAcks(c conn, quorum int) error {
	for n := 0; n < quorum; {
		if _, err := c.Recv(context.Background()); err != nil { // want "raw context passed to blocking Recv"
			return err
		}
		n++
	}
	return nil
}
