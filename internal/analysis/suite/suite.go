// Package suite lists the vetstore analyzers in one place so the driver
// and the repo-wide clean-run test agree on what "the suite" is.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/poolsafe"
	"repro/internal/analysis/seededdet"
	"repro/internal/analysis/wireexhaustive"
)

// Analyzers is the full vetstore suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	wireexhaustive.Analyzer,
	poolsafe.Analyzer,
	lockdiscipline.Analyzer,
	seededdet.Analyzer,
	ctxflow.Analyzer,
}
