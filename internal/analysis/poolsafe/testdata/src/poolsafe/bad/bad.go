// Package bad exercises both poolsafe failure modes: reads of a pooled
// buffer after it went back to the pool, and decoder views that alias a
// pooled frame escaping the decode call.
package bad

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() interface{} { return new(buf) }}

func putBuf(x *buf) {
	pool.Put(x)
}

func useAfterDirectPut() []byte {
	x := pool.Get().(*buf)
	pool.Put(x)
	return x.b // want "used after being returned to its sync.Pool"
}

func useAfterHelperPut() int {
	x := pool.Get().(*buf)
	putBuf(x)
	return len(x.b) // want "used after being returned to its sync.Pool"
}

func putInBranchThenUse(cond bool) []byte {
	x := pool.Get().(*buf)
	if cond {
		putBuf(x)
	}
	return x.b // want "used after being returned to its sync.Pool"
}

type dec struct{ b []byte }

func (d *dec) view() []byte { return d.b }

type msg struct{ payload []byte }

func returnsView(d *dec) []byte {
	return d.view() // want "escapes via return"
}

func storesView(d *dec) msg {
	return msg{payload: d.view()} // want "stored in a composite literal"
}

func viaLocal(d *dec) []byte {
	s := d.view()
	return s // want "escapes via return"
}
