// Package good shows the sanctioned pool idioms: copy out before Put,
// put only on terminating paths, defer the put, and consume views in
// place.
package good

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() interface{} { return new(buf) }}

func putBuf(x *buf) {
	pool.Put(x)
}

func copyOutBeforePut(m []byte) []byte {
	x := pool.Get().(*buf)
	x.b = append(x.b[:0], m...)
	out := make([]byte, len(x.b))
	copy(out, x.b)
	putBuf(x)
	return out
}

func putOnErrorPath(m []byte) []byte {
	x := pool.Get().(*buf)
	if len(m) == 0 {
		putBuf(x)
		return nil
	}
	x.b = append(x.b[:0], m...)
	out := make([]byte, len(x.b))
	copy(out, x.b)
	putBuf(x)
	return out
}

func deferredPut(m []byte) int {
	x := pool.Get().(*buf)
	defer putBuf(x)
	x.b = append(x.b[:0], m...)
	return len(x.b)
}

type dec struct{ b []byte }

func (d *dec) view() []byte { return d.b }

func decodeNested(d *dec, decode func([]byte) int) int {
	sub := d.view()
	return decode(sub)
}
