// Package poolsafe guards the pooled zero-copy codec paths. Two failure
// modes ended up on the PR 6 review checklist, and this analyzer makes
// them mechanical:
//
//  1. Use-after-Put: a buffer obtained from a sync.Pool (directly via
//     Get, or put back via a `put*` helper like putEnc/putFrame) must not
//     be read after it is returned to the pool. The analysis is a linear
//     walk per function: once a pooled variable is put on a path that
//     falls through, any later use on that path is flagged. `defer
//     put*(x)` is fine — the put happens at function exit.
//
//  2. Alias escape: the decoder's `view()` returns a sub-slice of the
//     (possibly pooled) input frame. Views may be consumed in place —
//     passed to a recursive decode call — but must never be returned,
//     stored into a struct or slice, or otherwise outlive the frame;
//     fields that persist must use the copying bytesN instead.
package poolsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flag retention of sync.Pool buffers past Put and decoded fields aliasing pooled frames",
	Scoped: func(importPath string) bool {
		return strings.Contains(importPath, "internal/wire") ||
			strings.Contains(importPath, "internal/transport/tcpnet")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterPut(pass, fd.Body)
			checkViewEscapes(pass, fd.Body)
		}
	}
	return nil
}

// --- rule 1: use after Put -------------------------------------------------

func checkUseAfterPut(pass *analysis.Pass, body *ast.BlockStmt) {
	pooled := map[types.Object]bool{}
	// First sweep: variables bound to a sync.Pool Get result (possibly
	// through a type assertion).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isPoolGet(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					pooled[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					pooled[obj] = true
				}
			}
		}
		return true
	})
	scanList(pass, body.List, pooled, map[types.Object]bool{})
}

// scanList walks one statement list linearly, carrying the set of
// variables already returned to a pool. It returns the set of variables
// this list puts without terminating (so callers can propagate a put made
// inside an if-branch that falls through).
func scanList(pass *analysis.Pass, list []ast.Stmt, pooled, put map[types.Object]bool) map[types.Object]bool {
	leaked := map[types.Object]bool{}
	for _, stmt := range list {
		// Uses of already-put variables in this statement.
		if len(put) > 0 {
			reportUses(pass, stmt, put)
		}

		switch s := stmt.(type) {
		case *ast.DeferStmt:
			continue // runs at function exit, after all uses
		case *ast.AssignStmt:
			// Rebinding a put variable makes it safe again.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := objOf(pass, id); obj != nil {
						delete(put, obj)
						delete(leaked, obj)
					}
				}
			}
		case *ast.ExprStmt:
			for _, obj := range putTargets(pass, s.X, pooled) {
				put[obj] = true
				leaked[obj] = true
			}
		case *ast.IfStmt:
			inner := scanList(pass, s.Body.List, pooled, copySet(put))
			if !terminates(s.Body.List) {
				for obj := range inner {
					put[obj] = true
					leaked[obj] = true
				}
			}
			if alt, ok := s.Else.(*ast.BlockStmt); ok {
				inner := scanList(pass, alt.List, pooled, copySet(put))
				if !terminates(alt.List) {
					for obj := range inner {
						put[obj] = true
						leaked[obj] = true
					}
				}
			}
		case *ast.BlockStmt:
			inner := scanList(pass, s.List, pooled, put)
			for obj := range inner {
				leaked[obj] = true
			}
		case *ast.ForStmt:
			scanList(pass, s.Body.List, pooled, copySet(put))
		case *ast.RangeStmt:
			scanList(pass, s.Body.List, pooled, copySet(put))
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				scanList(pass, cc.(*ast.CaseClause).Body, pooled, copySet(put))
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				scanList(pass, cc.(*ast.CaseClause).Body, pooled, copySet(put))
			}
		}
	}
	return leaked
}

// reportUses flags reads of variables in put inside stmt. The put calls
// themselves live in earlier statements, so every ident use here is a
// genuine read-after-put.
func reportUses(pass *analysis.Pass, stmt ast.Stmt, put map[types.Object]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are out of scope for the linear walk
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && put[obj] {
			pass.Reportf(id.Pos(), "pooled buffer %s is used after being returned to its sync.Pool", id.Name)
			delete(put, obj) // one report per put is enough
		}
		return true
	})
}

// putTargets reports which tracked variables expr returns to a pool: a
// direct (sync.Pool).Put(x) for any x, or a helper whose name starts with
// "put" called on an already pool-derived variable.
func putTargets(pass *analysis.Pass, expr ast.Expr, pooled map[types.Object]bool) []types.Object {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var out []types.Object
	direct := isPoolPut(pass, call)
	helper := false
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		helper = strings.HasPrefix(fun.Name, "put")
	case *ast.SelectorExpr:
		helper = strings.HasPrefix(fun.Sel.Name, "put")
	}
	if !direct && !helper {
		return nil
	}
	for _, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		if direct || pooled[obj] {
			out = append(out, obj)
		}
	}
	return out
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// --- rule 2: view escapes --------------------------------------------------

// checkViewEscapes flags results of `view()`-style aliasing accessors that
// outlive the frame: returned, stored in composite literals, or assigned
// to non-local destinations. Consuming a view as a call argument is the
// sanctioned use.
func checkViewEscapes(pass *analysis.Pass, body *ast.BlockStmt) {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	viewVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isViewCall(call) {
			checkAliasContext(pass, call, "result of view()", parents, viewVars)
		}
		return true
	})
	if len(viewVars) == 0 {
		return
	}
	// Second sweep: uses of variables holding a view.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && viewVars[obj] {
			checkAliasContext(pass, id, "view-aliased buffer "+id.Name, parents, viewVars)
		}
		return true
	})
}

func isViewCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "view"
}

// checkAliasContext climbs from an aliasing expression to its consumer and
// reports contexts that let the alias outlive the frame.
func checkAliasContext(pass *analysis.Pass, n ast.Node, what string, parents map[ast.Node]ast.Node, viewVars map[types.Object]bool) {
	child := n
	for {
		parent := parents[child]
		if parent == nil {
			return
		}
		switch p := parent.(type) {
		case *ast.ParenExpr, *ast.SliceExpr:
			child = parent
			continue
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(), "%s aliases a pooled frame and escapes via return; copy with bytesN instead", what)
			return
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "%s aliases a pooled frame and is stored in a composite literal; copy with bytesN instead", what)
			return
		case *ast.KeyValueExpr:
			if p.Value == child {
				pass.Reportf(n.Pos(), "%s aliases a pooled frame and is stored in a composite literal; copy with bytesN instead", what)
			}
			return
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != child || i >= len(p.Lhs) {
					continue
				}
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					// Local rebinding: track the variable instead.
					if obj := objOf(pass, id); obj != nil && !isFieldOrGlobal(pass, obj) {
						viewVars[obj] = true
						return
					}
				}
				pass.Reportf(n.Pos(), "%s aliases a pooled frame and is assigned to a non-local destination; copy with bytesN instead", what)
			}
			return
		case *ast.CallExpr:
			return // consumed in place (recursive decode) — sanctioned
		default:
			return
		}
	}
}

// --- shared helpers --------------------------------------------------------

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isFieldOrGlobal(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	return v.IsField() || v.Parent() == pass.Pkg.Scope()
}

func copySet(s map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func isPoolGet(pass *analysis.Pass, expr ast.Expr) bool {
	if ta, ok := expr.(*ast.TypeAssertExpr); ok {
		expr = ta.X
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	return isSyncPool(pass.TypesInfo.Types[sel.X].Type)
}

func isPoolPut(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	return isSyncPool(pass.TypesInfo.Types[sel.X].Type)
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}
