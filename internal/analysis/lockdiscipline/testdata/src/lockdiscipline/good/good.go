// Package good holds the sanctioned shapes: snapshot under the lock,
// block outside it; non-blocking sends; local closures.
package good

import "sync"

type inner interface {
	Recv() (int, error)
}

type observer interface {
	OnMessage(v int)
}

type conn struct {
	mu      sync.Mutex
	ch      chan int
	inner   inner
	onEvent func(int)
	taps    []observer
}

func sendOutsideLock(c *conn) {
	c.mu.Lock()
	v := 1
	c.mu.Unlock()
	c.ch <- v
}

func snapshotThenObserve(c *conn) {
	c.mu.Lock()
	taps := c.taps
	c.mu.Unlock()
	for _, t := range taps {
		t.OnMessage(1)
	}
}

func nonBlockingSendUnderLock(c *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- 1:
	default:
	}
}

func localClosureUnderLock(c *conn) bool {
	admit := func(v int) bool { return v > 0 }
	c.mu.Lock()
	defer c.mu.Unlock()
	return admit(1)
}

func recvAfterUnlock(c *conn) (int, error) {
	c.mu.Lock()
	in := c.inner
	c.mu.Unlock()
	return in.Recv()
}
