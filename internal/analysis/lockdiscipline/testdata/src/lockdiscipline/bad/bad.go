// Package bad holds the deadlock shapes lockdiscipline exists to catch:
// blocking operations and foreign code invoked with a mutex held.
package bad

import "sync"

type inner interface {
	Recv() (int, error)
}

type observer interface {
	OnMessage(v int)
}

type conn struct {
	mu      sync.Mutex
	ch      chan int
	inner   inner
	onEvent func(int)
	taps    []observer
}

func sendUnderLock(c *conn) {
	c.mu.Lock()
	c.ch <- 1 // want "channel send while holding c.mu"
	c.mu.Unlock()
}

func recvUnderDeferredUnlock(c *conn) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Recv() // want "call to Recv while holding c.mu"
}

func observerUnderLock(c *conn) {
	c.mu.Lock()
	for _, t := range c.taps {
		t.OnMessage(1) // want "callback OnMessage invoked while holding c.mu"
	}
	c.mu.Unlock()
}

func fieldCallbackUnderLock(c *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvent(2) // want "func-field callback onEvent invoked while holding c.mu"
}

func blockingSelectUnderLock(c *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- 1: // want "blocking select send while holding c.mu"
	case v := <-c.ch:
		_ = v
	}
}
