// Package lockdiscipline flags operations that can block, or run foreign
// code, while a sync.Mutex/RWMutex is held in the transport layers — the
// deadlock shape behind the PR 2 cross-receiver stall: a channel send (or
// Recv, or dial, or user callback) made under a lock that the operation's
// completion path also needs.
//
// While at least one lock is held, the analyzer reports:
//
//   - channel send statements, unless they are the communication of a
//     select that has a default clause (a non-blocking send);
//   - calls to anything named Recv or Accept, or Dial-prefixed (blocking
//     transport operations);
//   - callback invocations: calls through func-typed struct fields or
//     package-level function variables, and observer methods named
//     On<Something> (the Tap convention) — foreign code that may
//     re-enter the locked structure.
//
// Lock state is tracked per function with a linear walk keyed on the
// receiver expression (`n.mu`, `c.net.mu`, ...). Branches are analyzed
// with a copy of the held set; `defer mu.Unlock()` keeps the lock held to
// the end of the function. Local closures invoked under a lock (a
// deliberate fault-injection idiom) are exempt, as is code inside nested
// FuncLits, which runs in its own context.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag channel sends, Recv/dial calls, and callback invocations made while a mutex is held",
	Scoped: func(importPath string) bool {
		return strings.Contains(importPath, "internal/transport")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &walker{pass: pass}
				w.walk(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// walk processes one statement list, mutating held as locks are taken and
// released. Nested branch bodies get a copy: a lock taken inside a branch
// is not assumed held after it.
func (w *walker) walk(list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if !w.lockEvent(s.X, held) {
				w.checkExpr(s.X, held)
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.checkExpr(e, held)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							w.checkExpr(e, held)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				w.checkExpr(e, held)
			}
		case *ast.SendStmt:
			if len(held) > 0 {
				w.pass.Reportf(s.Arrow, "channel send while holding %s", describe(held))
			}
			w.checkExpr(s.Value, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function; other deferred calls run after the walk's horizon.
		case *ast.GoStmt:
			// New goroutine: runs in its own lock context.
		case *ast.IfStmt:
			if s.Init != nil {
				w.walk([]ast.Stmt{s.Init}, held)
			}
			w.checkExpr(s.Cond, held)
			w.walk(s.Body.List, copyHeld(held))
			switch alt := s.Else.(type) {
			case *ast.BlockStmt:
				w.walk(alt.List, copyHeld(held))
			case *ast.IfStmt:
				w.walk([]ast.Stmt{alt}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				w.checkExpr(s.Cond, held)
			}
			w.walk(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			w.checkExpr(s.X, held)
			w.walk(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				w.checkExpr(s.Tag, held)
			}
			for _, cc := range s.Body.List {
				w.walk(cc.(*ast.CaseClause).Body, copyHeld(held))
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				w.walk(cc.(*ast.CaseClause).Body, copyHeld(held))
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if send, ok := cc.Comm.(*ast.SendStmt); ok && len(held) > 0 && !hasDefault {
					w.pass.Reportf(send.Arrow, "blocking select send while holding %s", describe(held))
				}
				w.walk(cc.Body, copyHeld(held))
			}
		case *ast.BlockStmt:
			w.walk(s.List, held)
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{s.Stmt}, held)
		}
	}
}

// lockEvent updates held for mu.Lock/Unlock-style calls and reports
// whether expr was one.
func (w *walker) lockEvent(expr ast.Expr, held map[string]token.Pos) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	case "TryLock", "TryRLock":
		// Conservatively ignored: treating a TryLock as held would need
		// branch-sensitive tracking of its result.
		return true
	}
	return false
}

// checkExpr flags blocking/foreign calls inside expr while locks are held.
func (w *walker) checkExpr(expr ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkCall(call, held)
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, held map[string]token.Pos) {
	info := w.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[fun.Sel]
		if obj == nil {
			return
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			return // mutex ops handled by lockEvent
		}
		name := fun.Sel.Name
		if isBlockingName(name) {
			w.pass.Reportf(call.Pos(), "call to %s while holding %s", name, describe(held))
			return
		}
		if isObserverName(name) {
			w.pass.Reportf(call.Pos(), "callback %s invoked while holding %s", name, describe(held))
			return
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if _, isFunc := sel.Type().Underlying().(*types.Signature); isFunc {
				w.pass.Reportf(call.Pos(), "func-field callback %s invoked while holding %s", name, describe(held))
			}
		}
	case *ast.Ident:
		obj := info.Uses[fun]
		if obj == nil {
			return
		}
		if isBlockingName(fun.Name) {
			w.pass.Reportf(call.Pos(), "call to %s while holding %s", fun.Name, describe(held))
			return
		}
		// A package-level function variable is a rebindable callback;
		// local closures are a sanctioned idiom and stay exempt.
		if v, ok := obj.(*types.Var); ok && v.Parent() == w.pass.Pkg.Scope() {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				w.pass.Reportf(call.Pos(), "package-level callback %s invoked while holding %s", fun.Name, describe(held))
			}
		}
	}
}

func isBlockingName(name string) bool {
	return name == "Recv" || name == "Accept" ||
		strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "dial")
}

// isObserverName matches the On<Event> observer-callback convention
// (OnMessage and friends).
func isObserverName(name string) bool {
	return len(name) > 2 && strings.HasPrefix(name, "On") &&
		unicode.IsUpper(rune(name[2]))
}

func describe(held map[string]token.Pos) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
