// Package telemetry mirrors the shape of the observability core
// (internal/obs): event recorders must stamp timestamps through an
// injected clock, never by reading the wall clock directly — a direct
// read would make every seeded harness's trace nondeterministic.
package telemetry

import "time"

// Clock is the injectable time source, mirroring obs.Clock.
type Clock func() time.Time

type event struct {
	at   time.Time
	kind string
}

// badRecorder stamps events straight off the wall clock.
type badRecorder struct {
	events []event
}

func (r *badRecorder) record(kind string) {
	r.events = append(r.events, event{
		at:   time.Now(), // want "time.Now keys behavior on the wall clock"
		kind: kind,
	})
}

func (r *badRecorder) age(ev event) time.Duration {
	return time.Since(ev.at) // want "time.Since keys behavior on the wall clock"
}

// goodRecorder stamps events through its injected clock. Assigning
// time.Now as the default VALUE is the sanctioned pattern — the leak is
// calling it at record time, not referencing it as a fallback the
// harness overrides.
type goodRecorder struct {
	clock  Clock
	events []event
}

func newGoodRecorder(clock Clock) *goodRecorder {
	if clock == nil {
		clock = time.Now
	}
	return &goodRecorder{clock: clock}
}

func (r *goodRecorder) record(kind string) {
	r.events = append(r.events, event{at: r.clock(), kind: kind})
}

func (r *goodRecorder) age(ev event) time.Duration {
	return r.clock().Sub(ev.at)
}
