// Package good draws from a seeded source and scans maps in
// order-independent ways.
package good

import (
	"math/rand"
	"sort"
)

func seededJitter(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

func countEven(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v%2 == 0 {
			n++
		}
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func anyBusy(m map[string]chan int) bool {
	busy := false
	for _, ch := range m {
		if len(ch) > 0 {
			busy = true
			break
		}
	}
	return busy
}

func anyNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// confirmedQuorum mirrors the pipelined writer's ack bookkeeping: a
// pure count over the confirmation map is order-independent and legal.
func confirmedQuorum(acked map[int]bool, quorum int) bool {
	n := 0
	for _, ok := range acked {
		if ok {
			n++
		}
	}
	return n >= quorum
}
