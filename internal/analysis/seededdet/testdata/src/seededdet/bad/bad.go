// Package bad leaks nondeterminism into a seed-deterministic path three
// ways: the global rand source, the wall clock, and map iteration order.
package bad

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) // want "global math/rand.Intn"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now keys behavior on the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since keys behavior on the wall clock"
}

func pickAny(m map[string]int) string {
	for k := range m {
		return k // want "nondeterministic iteration order"
	}
	return ""
}

func pickFirst(m map[string]int) string {
	best := ""
	for k := range m {
		best = k
		break // want "nondeterministic iteration order"
	}
	return best
}

// retryTarget picks which pending ack to chase by map encounter order —
// a seeded schedule replaying this collector would diverge run to run.
func retryTarget(pending map[int]bool) int {
	for id, waiting := range pending {
		if waiting {
			return id // want "nondeterministic iteration order"
		}
	}
	return -1
}
