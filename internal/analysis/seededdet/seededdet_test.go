package seededdet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seededdet"
)

func TestSeededDet(t *testing.T) {
	analysistest.Run(t, seededdet.Analyzer, "seededdet/bad", "seededdet/good", "seededdet/telemetry")
}
