// Package seededdet protects the seed-determinism contract of the fault
// injector, the simulated network, and the workload generator: the same
// seed must produce the same schedule. Three leaks break that contract
// and are flagged inside the scoped packages:
//
//   - package-level math/rand functions (rand.Intn, rand.Float64, ...),
//     which draw from the unseeded global source; constructors
//     (rand.New, rand.NewSource) are the sanctioned path and stay legal,
//     as do methods on an explicit *rand.Rand;
//   - time.Now and time.Since, which key behavior on the wall clock;
//   - map iteration that selects by encounter order: a range over a map
//     whose body returns a value derived from the loop variables, or that
//     both stores a loop-variable-derived value outside the loop and
//     breaks early. (Order-independent scans — count, any-match setting
//     a boolean before breaking — are fine.)
package seededdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededdet",
	Doc:  "forbid global math/rand, time.Now, and map-iteration-order dependence in seed-deterministic paths",
	Scoped: func(importPath string) bool {
		return strings.Contains(importPath, "internal/transport/fault") ||
			strings.Contains(importPath, "internal/transport/simnet") ||
			strings.Contains(importPath, "internal/workload") ||
			// The telemetry core promises that time enters only through an
			// injectable Clock — a direct wall-clock read there would leak
			// nondeterminism into every seeded harness that records traces.
			strings.Contains(importPath, "internal/obs")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global math/rand.%s draws from the unseeded process-wide source; use a seeded *rand.Rand", fn.Name())
		}
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s keys behavior on the wall clock in a seed-deterministic path", fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops whose outcome depends on
// iteration order: a return whose value mentions the loop variables, or
// an unlabeled break belonging to this loop when the body also assigns a
// loop-variable-derived value to storage outside the loop (first-match
// selection). A break after setting only constants (any-match) is
// order-independent and stays legal.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}

	// First sweep: does the body leak a loop-variable-derived value into
	// storage that outlives the loop? (Assignments to the loop variables
	// themselves, or to locals declared inside the body, don't count.)
	leaks := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		usesLoopVar := false
		for _, r := range as.Rhs {
			if usesAny(pass, r, loopVars) {
				usesLoopVar = true
			}
		}
		if !usesLoopVar {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || loopVars[obj] ||
					(obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()) {
					continue
				}
			}
			leaks = true
		}
		return true
	})

	var flag func(stmts []ast.Stmt, breakable bool)
	flag = func(stmts []ast.Stmt, breakable bool) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.BranchStmt:
				if s.Tok == token.BREAK && s.Label == nil && breakable && leaks {
					pass.Reportf(s.Pos(), "first-match break out of a map range depends on nondeterministic iteration order; sort the keys first")
				}
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					if usesAny(pass, r, loopVars) {
						pass.Reportf(s.Pos(), "returning a value derived from map range variables depends on nondeterministic iteration order; sort the keys first")
						break
					}
				}
			case *ast.IfStmt:
				flag(s.Body.List, breakable)
				switch alt := s.Else.(type) {
				case *ast.BlockStmt:
					flag(alt.List, breakable)
				case *ast.IfStmt:
					flag([]ast.Stmt{alt}, breakable)
				}
			case *ast.BlockStmt:
				flag(s.List, breakable)
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					flag(cc.(*ast.CaseClause).Body, false)
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					flag(cc.(*ast.CaseClause).Body, false)
				}
			case *ast.SelectStmt:
				for _, cc := range s.Body.List {
					flag(cc.(*ast.CommClause).Body, false)
				}
			case *ast.LabeledStmt:
				flag([]ast.Stmt{s.Stmt}, breakable)
				// Nested loops own their breaks; returns inside them still
				// escape this range, so keep looking for those.
			case *ast.ForStmt:
				flag(s.Body.List, false)
			case *ast.RangeStmt:
				flag(s.Body.List, false)
			}
		}
	}
	flag(rng.Body.List, true)
}

func usesAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
