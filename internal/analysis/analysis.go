// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) used by the vetstore
// suite. The real golang.org/x/tools/go/analysis module is deliberately not
// imported: this repo builds offline, so the framework is restricted to the
// standard library (go/ast, go/types, go/token).
//
// An Analyzer inspects one package at a time. The driver (cmd/vetstore or the
// analysistest harness) constructs a Pass with parsed files and complete type
// information and calls Run. Findings are reported through Pass.Reportf and
// surface as file:line:col diagnostics.
//
// Line-level suppression: a comment of the form
//
//	//vetstore:ignore <analyzer-name> <reason>
//
// on the flagged line, or on the line immediately above it, silences that
// one diagnostic. Suppressions are resolved by the driver after Run returns.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is a short lowercase identifier, e.g. "poolsafe". It is used in
	// diagnostics and in //vetstore:ignore directives.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Scoped reports whether the analyzer should run on the package with the
	// given import path. Analyzers that enforce repo-specific invariants
	// (e.g. poolsafe only audits the wire and tcpnet layers) use this to
	// avoid false positives elsewhere. A nil Scoped means "run everywhere".
	//
	// Testdata packages are always in scope: the harness rewrites their
	// import paths so that the first path element is the analyzer name.
	Scoped func(importPath string) bool

	// Run performs the check. Diagnostics go through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's worth of input to an Analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportPath is the package path as the build system knows it (it may
	// differ from Pkg.Path() for testdata packages).
	ImportPath string

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved from Pos at report time
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the analyzer applies to the given import path.
func (a *Analyzer) InScope(importPath string) bool {
	if a.Scoped == nil {
		return true
	}
	// Testdata convention: package path begins with the analyzer's own name
	// (e.g. "poolsafe/bad"); such packages are always in scope so golden
	// tests exercise the check regardless of its repo scoping.
	if first, _, _ := strings.Cut(importPath, "/"); first == a.Name {
		return true
	}
	return a.Scoped(importPath)
}

// RunPackage runs the analyzers that are in scope for the pass's package and
// returns the surviving diagnostics sorted by position, with
// //vetstore:ignore suppressions already applied.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	suppressed := collectIgnores(fset, files)
	for _, a := range analyzers {
		if !a.InScope(importPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			ImportPath: importPath,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, importPath, err)
		}
		for _, d := range pass.diagnostics {
			if suppressed.covers(a.Name, d.Position) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreSet maps file -> line -> set of analyzer names (or "*") suppressed
// on that line.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line and the line below,
	// so both "same line" and "line above" placements work.
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//vetstore:ignore")
				if !ok {
					continue
				}
				name := "*"
				if fields := strings.Fields(rest); len(fields) > 0 {
					name = fields[0]
				}
				pos := fset.Position(c.Pos())
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]map[string]bool{}
				}
				if set[pos.Filename][pos.Line] == nil {
					set[pos.Filename][pos.Line] = map[string]bool{}
				}
				set[pos.Filename][pos.Line][name] = true
			}
		}
	}
	return set
}
