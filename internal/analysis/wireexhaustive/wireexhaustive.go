// Package wireexhaustive enforces the four hand-maintained tables that a
// wire message type must appear in: the Clone type switch, the compact
// encoder's type switch, the compact decoder's tag switch, and gob
// registration. Adding a concrete Msg without full plumbing fails `make
// lint` instead of panicking during a soak.
//
// The analyzer is structural rather than name-bound so its golden testdata
// exercises the same logic as the real package:
//
//   - a "marker interface" is a package-level interface with exactly one
//     unexported niladic method (wire.Msg's `isMsg()` shape);
//   - every package-level concrete type implementing it is a message;
//   - every type switch over the marker interface must list every message
//     (Clone and enc.msg are exactly these switches);
//   - if the package declares tag constants (`tag<Type>`), every message
//     needs one, and every message's tag must appear as a switch case
//     (the compact decode table);
//   - if the package calls gob.Register anywhere, every message must be
//     registered (composite literals in the registering function count);
//   - a message with an `Op uint64` field is a trace envelope: every keyed
//     composite literal of it in non-test code must set Op explicitly, so
//     a reply path cannot silently drop the distributed trace ID.
package wireexhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireexhaustive",
	Doc:  "check that every concrete wire.Msg is covered by Clone, the compact encode/decode tables, and gob registration",
	Scoped: func(importPath string) bool {
		return strings.Contains(importPath, "internal/wire")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, iface := range markerInterfaces(pass.Pkg) {
		msgs := concreteImpls(pass.Pkg, iface)
		if len(msgs) == 0 {
			continue
		}
		checkTypeSwitches(pass, iface, msgs)
		checkTagTable(pass, msgs)
		checkGobRegistration(pass, msgs)
		checkOpEcho(pass, msgs)
	}
	return nil
}

// checkOpEcho enforces the trace-context convention: a message with an
// `Op uint64` field is a trace envelope, and every keyed composite
// literal of one must set the Op key explicitly. A server path that
// rebuilds the envelope around its reply and forgets the key silently
// drops the distributed trace ID — nothing breaks, the op just loses
// its server-side life, so no functional test catches it. Empty
// literals (gob registration zero values) and positional literals (all
// fields present by construction) are exempt, as are _test.go files,
// which construct deliberately untraced envelopes; production code
// writes `Op: 0` to mark an envelope untraced on purpose.
func checkOpEcho(pass *analysis.Pass, msgs []*types.TypeName) {
	carriers := map[*types.TypeName]bool{}
	for _, m := range msgs {
		st, ok := m.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != "Op" {
				continue
			}
			if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Uint64 {
				carriers[m] = true
			}
		}
	}
	if len(carriers) == 0 {
		return
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || len(cl.Elts) == 0 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || !carriers[named.Obj()] {
				return true
			}
			keyed, hasOp := false, false
			for _, e := range cl.Elts {
				kv, ok := e.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Op" {
					hasOp = true
				}
			}
			if keyed && !hasOp {
				pass.Reportf(cl.Pos(), "%s literal does not set Op: echo the trace ID explicitly (Op: 0 marks a deliberately untraced envelope)",
					named.Obj().Name())
			}
			return true
		})
	}
}

// markerInterfaces finds package-level interfaces shaped like wire.Msg: one
// unexported method, no parameters, no results.
func markerInterfaces(pkg *types.Package) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() != 1 {
			continue
		}
		m := iface.Method(0)
		sig := m.Type().(*types.Signature)
		if m.Exported() || sig.Params().Len() != 0 || sig.Results().Len() != 0 {
			continue
		}
		out = append(out, named)
	}
	return out
}

// concreteImpls returns the package-level non-interface types whose value
// type implements iface, sorted by name.
func concreteImpls(pkg *types.Package, iface *types.Named) []*types.TypeName {
	var out []*types.TypeName
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface.Underlying().(*types.Interface)) {
			out = append(out, tn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// checkTypeSwitches requires every type switch whose subject is the marker
// interface to list every message type explicitly; a default clause does
// not count as coverage.
func checkTypeSwitches(pass *analysis.Pass, iface *types.Named, msgs []*types.TypeName) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			subject := typeSwitchSubject(ts)
			if subject == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[subject]
			if !ok || !types.Identical(tv.Type, iface) {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range ts.Body.List {
				cc := stmt.(*ast.CaseClause)
				for _, e := range cc.List {
					if caseTV, ok := pass.TypesInfo.Types[e]; ok && caseTV.Type != nil {
						// Messages are value types, so pointer cases don't arise.
						if named, ok := caseTV.Type.(*types.Named); ok {
							covered[named.Obj().Name()] = true
						}
					}
				}
			}
			var missing []string
			for _, m := range msgs {
				if !covered[m.Name()] {
					missing = append(missing, m.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(ts.Switch, "type switch over %s is missing cases for: %s",
					iface.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

func typeSwitchSubject(ts *ast.TypeSwitchStmt) ast.Expr {
	switch s := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	}
	return nil
}

// checkTagTable enforces the compact-codec naming convention: if the
// package has integer constants named tag<Something>, then every message
// needs a tag<Type> constant, and each such constant must appear as a case
// in some switch (the decode table).
func checkTagTable(pass *analysis.Pass, msgs []*types.TypeName) {
	scope := pass.Pkg.Scope()
	tags := map[string]*types.Const{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "tag") || len(name) <= len("tag") {
			continue
		}
		if c.Val().Kind() != constant.Int {
			continue
		}
		tags[name] = c
	}
	if len(tags) == 0 {
		return // package has no compact tag table
	}

	// Constants referenced as case expressions in value switches.
	inCase := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range sw.Body.List {
				for _, e := range stmt.(*ast.CaseClause).List {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							inCase[obj] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, m := range msgs {
		tagName := "tag" + m.Name()
		c, ok := tags[tagName]
		if !ok {
			pass.Reportf(m.Pos(), "wire message %s has no %s constant in the compact tag table", m.Name(), tagName)
			continue
		}
		if !inCase[c] {
			pass.Reportf(c.Pos(), "tag constant %s is never used as a switch case: %s is missing from the compact decode table", tagName, m.Name())
		}
	}
}

// checkGobRegistration requires every message type to be gob-registered if
// the package registers any. Registration is recognized as a composite
// literal of the type occurring inside a function body that calls
// gob.Register (the wire package ranges over a slice literal of zero
// values).
func checkGobRegistration(pass *analysis.Pass, msgs []*types.TypeName) {
	registered := map[string]bool{}
	sawRegister := false
	for _, f := range pass.Files {
		var stack []ast.Node // enclosing FuncDecl/FuncLit chain
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				stack = append(stack, n)
				ast.Inspect(bodyOf(n), visit)
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				if isGobRegister(pass, n) && len(stack) > 0 {
					sawRegister = true
					// Every composite literal in the registering function
					// counts as registered.
					ast.Inspect(bodyOf(stack[len(stack)-1]), func(m ast.Node) bool {
						if cl, ok := m.(*ast.CompositeLit); ok {
							if tv, ok := pass.TypesInfo.Types[cl]; ok {
								if named, ok := tv.Type.(*types.Named); ok {
									registered[named.Obj().Name()] = true
								}
							}
						}
						return true
					})
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	if !sawRegister {
		return // package does not use gob
	}
	for _, m := range msgs {
		if !registered[m.Name()] {
			pass.Reportf(m.Pos(), "wire message %s is not gob-registered", m.Name())
		}
	}
}

func bodyOf(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

func isGobRegister(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "encoding/gob" &&
		(obj.Name() == "Register" || obj.Name() == "RegisterName")
}
