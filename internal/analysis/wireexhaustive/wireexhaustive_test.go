package wireexhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireexhaustive"
)

func TestWireExhaustive(t *testing.T) {
	analysistest.Run(t, wireexhaustive.Analyzer, "wireexhaustive/bad", "wireexhaustive/good")
}
