// Package bad plants FakeProbe, a wire message missing from every
// hand-maintained table, plus Quux, whose tag constant never reaches the
// decode switch, plus Wrap, a trace envelope whose reply path forgets to
// echo the Op field. This is the end-to-end guard that wireexhaustive
// itself still catches an unplumbed message.
package bad

import "encoding/gob"

type Msg interface{ isMsg() }

type Ping struct{ N int }
type Pong struct{ S string }
type Quux struct{ B bool }
type FakeProbe struct{ X int } // want "has no tagFakeProbe constant" "not gob-registered"

// Wrap is a trace envelope: every keyed literal must set Op.
type Wrap struct {
	Reg string
	Op  uint64
	Msg Msg
}

func (Ping) isMsg()      {}
func (Pong) isMsg()      {}
func (Quux) isMsg()      {}
func (FakeProbe) isMsg() {}
func (Wrap) isMsg()      {}

const (
	tagPing byte = iota + 1
	tagPong
	tagQuux // want "never used as a switch case"
	tagWrap
)

func init() {
	for _, m := range []interface{}{Ping{}, Pong{}, Quux{}, Wrap{}} {
		gob.Register(m)
	}
}

func Clone(m Msg) Msg {
	switch v := m.(type) { // want "missing cases for: FakeProbe"
	case Ping:
		return Ping{N: v.N}
	case Pong:
		return Pong{S: v.S}
	case Quux:
		return v
	case Wrap:
		return Wrap{Reg: v.Reg, Op: v.Op, Msg: Clone(v.Msg)}
	default:
		return m
	}
}

func Encode(m Msg) byte {
	switch m.(type) { // want "missing cases for: FakeProbe"
	case Ping:
		return tagPing
	case Pong:
		return tagPong
	case Quux:
		return tagQuux
	case Wrap:
		return tagWrap
	}
	return 0
}

// Reply rebuilds the envelope around an answer but forgets the trace
// ID — the silent drop the op-echo check exists to catch.
func Reply(req Wrap, ans Msg) Msg {
	return Wrap{Reg: req.Reg, Msg: ans} // want "does not set Op"
}

func Decode(tag byte) Msg {
	switch tag {
	case tagPing:
		return Ping{}
	case tagPong:
		return Pong{}
	case tagWrap:
		return Wrap{} // empty literal: gob-style zero value, exempt from op-echo
	}
	return nil
}
