// Package bad plants FakeProbe, a wire message missing from every
// hand-maintained table, plus Quux, whose tag constant never reaches the
// decode switch. This is the end-to-end guard that wireexhaustive itself
// still catches an unplumbed message.
package bad

import "encoding/gob"

type Msg interface{ isMsg() }

type Ping struct{ N int }
type Pong struct{ S string }
type Quux struct{ B bool }
type FakeProbe struct{ X int } // want "has no tagFakeProbe constant" "not gob-registered"

func (Ping) isMsg()      {}
func (Pong) isMsg()      {}
func (Quux) isMsg()      {}
func (FakeProbe) isMsg() {}

const (
	tagPing byte = iota + 1
	tagPong
	tagQuux // want "never used as a switch case"
)

func init() {
	for _, m := range []interface{}{Ping{}, Pong{}, Quux{}} {
		gob.Register(m)
	}
}

func Clone(m Msg) Msg {
	switch v := m.(type) { // want "missing cases for: FakeProbe"
	case Ping:
		return Ping{N: v.N}
	case Pong:
		return Pong{S: v.S}
	case Quux:
		return v
	default:
		return m
	}
}

func Encode(m Msg) byte {
	switch m.(type) { // want "missing cases for: FakeProbe"
	case Ping:
		return tagPing
	case Pong:
		return tagPong
	case Quux:
		return tagQuux
	}
	return 0
}

func Decode(tag byte) Msg {
	switch tag {
	case tagPing:
		return Ping{}
	case tagPong:
		return Pong{}
	}
	return nil
}
