// Package good plumbs every message through all four tables; the
// analyzer must stay silent.
package good

import "encoding/gob"

type Msg interface{ isMsg() }

type Ping struct{ N int }
type Pong struct{ S string }

func (Ping) isMsg() {}
func (Pong) isMsg() {}

const (
	tagPing byte = iota + 1
	tagPong
)

func init() {
	for _, m := range []interface{}{Ping{}, Pong{}} {
		gob.Register(m)
	}
}

func Clone(m Msg) Msg {
	switch v := m.(type) {
	case Ping:
		return Ping{N: v.N}
	case Pong:
		return Pong{S: v.S}
	default:
		return m
	}
}

func Encode(m Msg) byte {
	switch m.(type) {
	case Ping:
		return tagPing
	case Pong:
		return tagPong
	}
	return 0
}

func Decode(tag byte) Msg {
	switch tag {
	case tagPing:
		return Ping{}
	case tagPong:
		return Pong{}
	}
	return nil
}
