// Package good plumbs every message through all four tables — and
// echoes the trace envelope's Op field in every keyed literal — so the
// analyzer must stay silent.
package good

import "encoding/gob"

type Msg interface{ isMsg() }

type Ping struct{ N int }
type Pong struct{ S string }

// Wrap is a trace envelope: Op is the distributed trace ID every
// construction must carry forward (0 = untraced, stated explicitly).
type Wrap struct {
	Reg string
	Op  uint64
	Msg Msg
}

// Fetch mirrors the round-2 READ frame with its optional repair hint:
// a message carrying a pointer payload is still one message, and the
// pointer field changes nothing about the four-table contract — Clone
// deep-copies the hint, the codec gets one tag, gob one registration.
type Fetch struct {
	Round byte
	Hint  *Pong
}

func (Ping) isMsg()  {}
func (Pong) isMsg()  {}
func (Wrap) isMsg()  {}
func (Fetch) isMsg() {}

const (
	tagPing byte = iota + 1
	tagPong
	tagWrap
	tagFetch
)

func init() {
	for _, m := range []interface{}{Ping{}, Pong{}, Wrap{}, Fetch{}} {
		gob.Register(m)
	}
}

func Clone(m Msg) Msg {
	switch v := m.(type) {
	case Ping:
		return Ping{N: v.N}
	case Pong:
		return Pong{S: v.S}
	case Wrap:
		return Wrap{Reg: v.Reg, Op: v.Op, Msg: Clone(v.Msg)}
	case Fetch:
		f := Fetch{Round: v.Round}
		if v.Hint != nil {
			h := *v.Hint
			f.Hint = &h
		}
		return f
	default:
		return m
	}
}

func Encode(m Msg) byte {
	switch m.(type) {
	case Ping:
		return tagPing
	case Pong:
		return tagPong
	case Wrap:
		return tagWrap
	case Fetch:
		return tagFetch
	}
	return 0
}

func Decode(tag byte) Msg {
	switch tag {
	case tagPing:
		return Ping{}
	case tagPong:
		return Pong{}
	case tagWrap:
		return Wrap{Reg: "", Op: 0, Msg: nil}
	case tagFetch:
		return Fetch{}
	}
	return nil
}

// Reply rebuilds the envelope around an answer; stating Op: 0 is the
// sanctioned way to construct a deliberately untraced envelope.
func Reply(req Wrap, ans Msg) Msg {
	if req.Op == 0 {
		return Wrap{Reg: req.Reg, Op: 0, Msg: ans}
	}
	return Wrap{Reg: req.Reg, Op: req.Op, Msg: ans}
}
