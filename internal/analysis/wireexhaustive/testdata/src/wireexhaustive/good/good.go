// Package good plumbs every message through all four tables — and
// echoes the trace envelope's Op field in every keyed literal — so the
// analyzer must stay silent.
package good

import "encoding/gob"

type Msg interface{ isMsg() }

type Ping struct{ N int }
type Pong struct{ S string }

// Wrap is a trace envelope: Op is the distributed trace ID every
// construction must carry forward (0 = untraced, stated explicitly).
type Wrap struct {
	Reg string
	Op  uint64
	Msg Msg
}

func (Ping) isMsg() {}
func (Pong) isMsg() {}
func (Wrap) isMsg() {}

const (
	tagPing byte = iota + 1
	tagPong
	tagWrap
)

func init() {
	for _, m := range []interface{}{Ping{}, Pong{}, Wrap{}} {
		gob.Register(m)
	}
}

func Clone(m Msg) Msg {
	switch v := m.(type) {
	case Ping:
		return Ping{N: v.N}
	case Pong:
		return Pong{S: v.S}
	case Wrap:
		return Wrap{Reg: v.Reg, Op: v.Op, Msg: Clone(v.Msg)}
	default:
		return m
	}
}

func Encode(m Msg) byte {
	switch m.(type) {
	case Ping:
		return tagPing
	case Pong:
		return tagPong
	case Wrap:
		return tagWrap
	}
	return 0
}

func Decode(tag byte) Msg {
	switch tag {
	case tagPing:
		return Ping{}
	case tagPong:
		return Pong{}
	case tagWrap:
		return Wrap{Reg: "", Op: 0, Msg: nil}
	}
	return nil
}

// Reply rebuilds the envelope around an answer; stating Op: 0 is the
// sanctioned way to construct a deliberately untraced envelope.
func Reply(req Wrap, ans Msg) Msg {
	if req.Op == 0 {
		return Wrap{Reg: req.Reg, Op: 0, Msg: ans}
	}
	return Wrap{Reg: req.Reg, Op: req.Op, Msg: ans}
}
