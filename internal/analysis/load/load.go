// Package load turns `go list` output into fully type-checked packages for
// the vetstore analyzers, without golang.org/x/tools/go/packages.
//
// Strategy: `go list -deps -export -json <patterns>` emits the full import
// closure with gc export data (compiled package summaries) for every
// dependency, entirely from the local build cache — no network. Target
// packages (DepOnly == false) are then parsed and type-checked from source,
// with imports satisfied by a gc importer reading that export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matched by patterns, resolved
// relative to dir (typically the module root).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> gc export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			continue // source-level typechecking cannot see through cgo
		}
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
