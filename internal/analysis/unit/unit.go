// Package unit implements the driver protocol that cmd/go speaks to a
// -vettool binary, mirroring golang.org/x/tools/go/analysis/unitchecker
// without depending on it.
//
// cmd/go invokes the tool three ways:
//
//	tool -V=full        print a version line that includes a content hash
//	                    (used for build-cache keying)
//	tool -flags         print the tool's flags as JSON (we expose none)
//	tool <file>.cfg     analyze one compilation unit described by the
//	                    JSON config; diagnostics go to stderr, exit 2
//
// For dependency-only units cmd/go sets VetxOnly, expecting the tool to
// produce its fact file (VetxOutput) and nothing else. The vetstore
// analyzers are package-local and exchange no facts, so fact files are
// always empty placeholders.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// Config is the JSON schema of the *.cfg file cmd/go hands the tool. Field
// names and meanings follow unitchecker.Config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for vettool-mode invocations. It never returns.
func Main(analyzers []*analysis.Analyzer, args []string) {
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		diags, err := run(args[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
		}
		if len(diags) > 0 {
			os.Exit(2)
		}
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "usage: vetstore -V=full | -flags | <unit>.cfg (via go vet -vettool), or vetstore [patterns]\n")
		os.Exit(1)
	}
}

// IsVettoolInvocation reports whether args look like a cmd/go driver call
// rather than a human running the binary directly.
func IsVettoolInvocation(args []string) bool {
	return len(args) == 1 &&
		(args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg"))
}

// printVersion emits "<name> version <hash>" where the hash covers the
// tool's own executable, so editing an analyzer invalidates cached vet
// results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("vetstore version devel-%x\n", h.Sum(nil)[:12])
}

func run(cfgFile string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Test files are exempt from the suite by design (ctxflow permits
		// context.Background in tests; the rest enforce production-path
		// invariants), so drop them from the unit before typechecking.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})

	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	return analysis.RunPackage(fset, files, tpkg, info, cfg.ImportPath, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
