package servercentric_test

// The §6 claim, executable: the Proposition 1 lower bound migrates to
// the server-centric model — with at most 2t+2b servers, a reader that
// decides as soon as it has pushes from S−t servers (the fastest
// possible operation shape in the push model) cannot implement a safe
// storage. We reconstruct the run4/run5 forged-state adversary directly
// on push-model servers: the reader receives byte-identical pushes in
// a world where v1 was written (and must be returned) and in a world
// where nothing was written (and ⊥ must be returned).

import (
	"fmt"
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// pushView is what a fast push reader decides on: the first S−t pushed
// pairs, here synthesized directly (the network delivery the adversary
// schedules).
type pushView map[types.ObjectID]types.TSVal

// fastPushDecide is the natural b+1-support rule a fast push reader
// would use (the same rule that is safe at 2t+2b+1 servers).
func fastPushDecide(view pushView, b int) types.TSVal {
	support := map[string]int{}
	pairs := map[string]types.TSVal{}
	for _, p := range view {
		k := fmt.Sprintf("%d|%s", p.TS, string(p.Val))
		support[k]++
		pairs[k] = p
	}
	best := types.InitTSVal()
	for k, n := range support {
		if n >= b+1 && pairs[k].TS > best.TS {
			best = pairs[k]
		}
	}
	return best
}

// trustHighestPush is the other natural rule.
func trustHighestPush(view pushView, _ int) types.TSVal {
	best := types.InitTSVal()
	for _, p := range view {
		if p.TS > best.TS {
			best = p
		}
	}
	return best
}

func TestFastPushReadImpossibleAt2t2b(t *testing.T) {
	for _, tc := range []struct{ t, b int }{{1, 1}, {2, 1}, {2, 2}, {3, 3}} {
		t.Run(fmt.Sprintf("t=%d,b=%d", tc.t, tc.b), func(t *testing.T) {
			blocks, err := quorum.PartitionBlocks(tc.t, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			v1 := types.TSVal{TS: 1, Val: types.Value("v1")}
			bottom := types.InitTSVal()

			// The reader hears from B1 ∪ B2 ∪ T1 = S−t servers; T2's
			// pushes are delayed. In run4 the write completed (B2 and T2
			// hold v1; T1 missed the write — its messages and echoes are
			// in transit; B1 is Byzantine and pushes its forged-back σ0).
			// In run5 nothing was written and B2 is Byzantine, pushing
			// the forged σ2 = v1. Both worlds produce this exact view:
			view := pushView{}
			for _, i := range blocks.B1 {
				view[types.ObjectID(i)] = bottom.Clone() // forged σ0 / honest σ0
			}
			for _, i := range blocks.B2 {
				view[types.ObjectID(i)] = v1.Clone() // honest post-write / forged σ2
			}
			for _, i := range blocks.T1 {
				view[types.ObjectID(i)] = bottom.Clone() // write+echo in transit / honest
			}
			s := quorum.FastReadThreshold(tc.t, tc.b)
			if len(view) != s-tc.t {
				t.Fatalf("view has %d pushes, want S−t = %d", len(view), s-tc.t)
			}

			for name, rule := range map[string]func(pushView, int) types.TSVal{
				"require-support": fastPushDecide,
				"trust-highest":   trustHighestPush,
			} {
				got := rule(view, tc.b)
				// run4: safety demands v1; run5: safety demands ⊥. The
				// rule returns one value for both — at least one is
				// violated.
				violatesRun4 := !got.Val.Equal(v1.Val)
				violatesRun5 := !got.Val.IsBottom()
				if !violatesRun4 && !violatesRun5 {
					t.Errorf("%s: rule satisfied both runs — impossible by the theorem", name)
				}
			}
		})
	}
}

// TestEchoesDoNotRescueFastPushReads: even granting the run4 reader
// every echo message among the reachable servers, the view is
// unchanged — T1 never received the write (its echoes are in transit
// with it), B1 lies, and B2's echo only re-confirms what B2 already
// pushed. The §6 remark that server-to-server communication does not
// circumvent the bound for fast reads, in test form.
func TestEchoesDoNotRescueFastPushReads(t *testing.T) {
	blocks, err := quorum.PartitionBlocks(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1 := types.TSVal{TS: 1, Val: types.Value("v1")}
	view := pushView{}
	for _, i := range blocks.B1 {
		view[types.ObjectID(i)] = types.InitTSVal()
	}
	for _, i := range blocks.T1 {
		view[types.ObjectID(i)] = types.InitTSVal()
	}
	for _, i := range blocks.B2 {
		view[types.ObjectID(i)] = v1.Clone()
	}
	// An "echo-augmented" view can only change a server's pair if a
	// correct, reachable server actually holds v1 and its echo is
	// delivered. B2's echoes to T1 are exactly as delayed as the
	// writer's messages to T1 were (the adversary schedules both), so
	// nothing changes: support(v1) = |B2| = b < b+1 in run5's twin, and
	// the indistinguishability stands.
	if got := fastPushDecide(view, 2); !got.Val.IsBottom() {
		t.Fatalf("support rule returned %v on the ambiguous view", got)
	}
	if got := trustHighestPush(view, 2); !got.Val.Equal(v1.Val) {
		t.Fatalf("trust rule returned %v on the ambiguous view", got)
	}
}
