package servercentric_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/servercentric"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/types"
	"repro/internal/wire"
)

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

// world wires S servers (some possibly Byzantine pushers) plus clients.
type world struct {
	cfg     quorum.Config
	net     *memnet.Net
	servers []*servercentric.Server
}

func newWorld(t *testing.T, tt, b int, crash []int, byzForge []int) *world {
	t.Helper()
	cfg := quorum.Optimal(tt, b, 1)
	w := &world{cfg: cfg, net: memnet.New()}
	for i := 0; i < cfg.S; i++ {
		id := types.ObjectID(i)
		conn, err := w.net.Register(transport.Object(id))
		if err != nil {
			t.Fatal(err)
		}
		if contains(byzForge, i) {
			srv := newForger(id, cfg, conn)
			t.Cleanup(srv.Stop)
			srv.Start()
			continue
		}
		srv := servercentric.NewServer(id, cfg, conn)
		w.servers = append(w.servers, srv)
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	for _, i := range crash {
		w.net.Crash(transport.Object(types.ObjectID(i)))
	}
	t.Cleanup(func() { w.net.Close() })
	return w
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// forger is a Byzantine server pushing fabricated high pairs.
type forger struct {
	id   types.ObjectID
	cfg  quorum.Config
	conn transport.Conn
	stop context.CancelFunc
	done chan struct{}
}

func newForger(id types.ObjectID, cfg quorum.Config, conn transport.Conn) *forger {
	return &forger{id: id, cfg: cfg, conn: conn, done: make(chan struct{})}
}

func (f *forger) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.stop = cancel
	go func() {
		defer close(f.done)
		for {
			msg, err := f.conn.Recv(ctx)
			if err != nil {
				return
			}
			switch m := msg.Payload.(type) {
			case wire.BaselineWriteReq:
				f.conn.Send(msg.From, wire.BaselineWriteAck{ObjectID: f.id, TS: m.TS})
			case wire.SubscribeReq:
				f.conn.Send(msg.From, wire.PushState{
					ObjectID: f.id, Seq: m.Seq, TS: 1 << 30, Val: types.Value("forged"),
				})
			}
		}
	}()
}

func (f *forger) Stop() {
	if f.stop != nil {
		f.stop()
	}
	f.conn.Close()
	<-f.done
}

func (w *world) writer(t *testing.T) *servercentric.Writer {
	t.Helper()
	conn, err := w.net.Register(transport.Writer())
	if err != nil {
		t.Fatal(err)
	}
	wr, err := servercentric.NewWriter(w.cfg, conn)
	if err != nil {
		t.Fatal(err)
	}
	return wr
}

func (w *world) reader(t *testing.T, j int) *servercentric.Reader {
	t.Helper()
	conn, err := w.net.Register(transport.Reader(types.ReaderID(j)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := servercentric.NewReader(w.cfg, conn)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPushReadFresh(t *testing.T) {
	w := newWorld(t, 1, 1, nil, nil)
	r := w.reader(t, 0)
	got, err := r.Read(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Val.IsBottom() {
		t.Fatalf("fresh read = %v, want ⊥", got)
	}
}

func TestPushWriteThenRead(t *testing.T) {
	w := newWorld(t, 2, 1, nil, nil)
	wr := w.writer(t)
	r := w.reader(t, 0)
	for i := 1; i <= 4; i++ {
		val := types.Value(fmt.Sprintf("v%d", i))
		if err := wr.Write(ctx(t), val); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read(ctx(t))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Val.Equal(val) {
			t.Fatalf("read %d = %v, want %q", i, got, val)
		}
	}
	if got := wr.LastStats().Rounds; got != 1 {
		t.Errorf("push-model write rounds = %d, want 1", got)
	}
	if got := r.LastStats().Sent; got != w.cfg.S {
		t.Errorf("read sent %d messages, want %d (single subscribe broadcast)", got, w.cfg.S)
	}
}

func TestPushReadWithCrashes(t *testing.T) {
	w := newWorld(t, 2, 1, []int{0, 3}, nil)
	wr := w.writer(t)
	r := w.reader(t, 0)
	if err := wr.Write(ctx(t), types.Value("x")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Val.Equal(types.Value("x")) {
		t.Fatalf("read = %v", got)
	}
}

func TestPushReadRejectsForgery(t *testing.T) {
	// b Byzantine servers push fabricated high pairs: the refute rule
	// must discard them once all correct servers answer below.
	w := newWorld(t, 2, 2, nil, []int{1, 4})
	wr := w.writer(t)
	r := w.reader(t, 0)
	for i := 1; i <= 3; i++ {
		val := types.Value(fmt.Sprintf("v%d", i))
		if err := wr.Write(ctx(t), val); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read(ctx(t))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Val.Equal(val) {
			t.Fatalf("read %d = %v, want %q (forgery accepted!)", i, got, val)
		}
	}
}

func TestPushEchoConvergence(t *testing.T) {
	// The write quorum is S−t; servers outside it learn the value via
	// peer echo. Crash the writer's links... simplest check: after a
	// write, eventually every correct server pushes the latest value.
	w := newWorld(t, 2, 1, nil, nil)
	wr := w.writer(t)
	if err := wr.Write(ctx(t), types.Value("converge")); err != nil {
		t.Fatal(err)
	}
	r := w.reader(t, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := r.Read(ctx(t))
		if err != nil {
			t.Fatal(err)
		}
		if got.Val.Equal(types.Value("converge")) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("servers did not converge; last read %v", got)
		}
	}
}
