// Package servercentric implements the §6 extension of the model: base
// objects become first-class servers that exchange messages with each
// other and push unsolicited messages to clients. The notion of a
// round-trip dissolves — a reader sends a single subscribe message and
// then only receives.
//
// The storage built here is the natural push protocol the section
// sketches: the writer stores a timestamped pair at S−t servers in one
// round; servers echo every adopted pair to their peers, so all correct
// servers converge on the latest write; a reader subscribes once and
// waits for pushed states until some pair at the highest timestamp is
// vouched for by b+1 distinct servers (Byzantine servers cannot
// fabricate that support). The Proposition 1 lower bound migrates to
// this model for *fast* (one round-trip) reads — the paper notes a
// tight algorithm needs a different metric and leaves it open; this
// package provides the executable model and the E9 measurements.
package servercentric

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Server is one first-class storage server. It runs its own receive
// loop over an active transport endpoint: adopt writes, echo to peers,
// push state to subscribed readers.
type Server struct {
	id   types.ObjectID
	cfg  quorum.Config
	conn transport.Conn

	mu     sync.Mutex
	ts     types.TS
	val    types.Value
	subs   map[transport.NodeID]int64 // subscriber → subscription seq
	pushes int

	cancel context.CancelFunc
	done   chan struct{}
}

// NewServer returns server id over conn.
func NewServer(id types.ObjectID, cfg quorum.Config, conn transport.Conn) *Server {
	return &Server{
		id:   id,
		cfg:  cfg,
		conn: conn,
		subs: make(map[transport.NodeID]int64),
		done: make(chan struct{}),
	}
}

// Start launches the server's receive loop; Stop cancels it.
func (s *Server) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go func() {
		defer close(s.done)
		for {
			msg, err := s.conn.Recv(ctx)
			if err != nil {
				return
			}
			s.handle(msg)
		}
	}()
}

// Stop terminates the receive loop and waits for it to exit.
func (s *Server) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	s.conn.Close()
	<-s.done
}

// Pushes returns how many state pushes this server has sent (E9 metric).
func (s *Server) Pushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes
}

func (s *Server) handle(msg transport.Message) {
	switch m := msg.Payload.(type) {
	case wire.BaselineWriteReq:
		s.adopt(m.TS, m.Val, true)
		s.conn.Send(msg.From, wire.BaselineWriteAck{ObjectID: s.id, TS: m.TS})
	case wire.PushState:
		// Peer echo: adopt without re-echoing (one echo hop suffices for
		// convergence: every correct server echoes what it adopts from
		// the writer, and every correct server receives every echo).
		s.adopt(m.TS, m.Val, false)
	case wire.SubscribeReq:
		s.mu.Lock()
		s.subs[msg.From] = m.Seq
		ts, val := s.ts, s.val.Clone()
		s.pushes++
		s.mu.Unlock()
		s.conn.Send(msg.From, wire.PushState{ObjectID: s.id, Seq: m.Seq, TS: ts, Val: val})
	}
}

// adopt installs a newer pair and notifies peers (echo) and subscribers
// (push).
func (s *Server) adopt(ts types.TS, val types.Value, echo bool) {
	s.mu.Lock()
	if ts <= s.ts {
		s.mu.Unlock()
		return
	}
	s.ts = ts
	s.val = val.Clone()
	subs := make(map[transport.NodeID]int64, len(s.subs))
	for n, seq := range s.subs {
		subs[n] = seq
	}
	s.pushes += len(subs)
	s.mu.Unlock()

	if echo {
		for i := 0; i < s.cfg.S; i++ {
			if types.ObjectID(i) == s.id {
				continue
			}
			s.conn.Send(transport.Object(types.ObjectID(i)), wire.PushState{
				ObjectID: s.id, TS: ts, Val: val.Clone(), Echo: true,
			})
		}
	}
	for n, seq := range subs {
		s.conn.Send(n, wire.PushState{ObjectID: s.id, Seq: seq, TS: ts, Val: val.Clone()})
	}
}

// Writer stores values in one round at S−t servers.
type Writer struct {
	cfg   quorum.Config
	conn  transport.Conn
	ts    types.TS
	stats core.OpStats
}

// NewWriter returns the push-model writer.
func NewWriter(cfg quorum.Config, conn transport.Conn) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Writer{cfg: cfg, conn: conn}, nil
}

// LastStats returns the complexity record of the last completed WRITE.
func (w *Writer) LastStats() core.OpStats { return w.stats }

// Write stores v at S−t servers: one round (the echo propagation to the
// rest happens server-side, off the writer's critical path).
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	st := core.OpStats{Kind: core.OpWrite, Rounds: 1}
	w.ts++
	for i := 0; i < w.cfg.S; i++ {
		w.conn.Send(transport.Object(types.ObjectID(i)), wire.BaselineWriteReq{TS: w.ts, Val: v.Clone()})
		st.Sent++
	}
	acked := make(map[types.ObjectID]bool, w.cfg.RoundQuorum())
	for len(acked) < w.cfg.RoundQuorum() {
		msg, err := w.conn.Recv(ctx)
		if err != nil {
			return fmt.Errorf("servercentric: write ts=%d: %w", w.ts, err)
		}
		ack, ok := msg.Payload.(wire.BaselineWriteAck)
		if !ok || ack.TS != w.ts || acked[ack.ObjectID] {
			continue
		}
		acked[ack.ObjectID] = true
		st.Acks++
	}
	w.stats = st
	return nil
}

// Reader reads with a single subscribe message and pushed replies: the
// fastest possible operation shape in the server-centric model (§6).
type Reader struct {
	cfg   quorum.Config
	conn  transport.Conn
	seq   int64
	stats core.OpStats
}

// NewReader returns the push-model reader.
func NewReader(cfg quorum.Config, conn transport.Conn) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Reader{cfg: cfg, conn: conn}, nil
}

// LastStats returns the complexity record of the last completed READ.
func (r *Reader) LastStats() core.OpStats { return r.stats }

// Read subscribes once and waits for pushes until the highest
// timestamped pair has b+1 distinct supporters among at least S−t
// distinct servers. Echo convergence guarantees termination: every
// correct server eventually pushes the latest adopted pair.
func (r *Reader) Read(ctx context.Context) (types.TSVal, error) {
	st := core.OpStats{Kind: core.OpRead, Rounds: 1}
	r.seq++
	for i := 0; i < r.cfg.S; i++ {
		r.conn.Send(transport.Object(types.ObjectID(i)), wire.SubscribeReq{Seq: r.seq})
		st.Sent++
	}
	latest := make(map[types.ObjectID]types.TSVal)
	for {
		msg, err := r.conn.Recv(ctx)
		if err != nil {
			return types.TSVal{}, fmt.Errorf("servercentric: read: %w", err)
		}
		push, ok := msg.Payload.(wire.PushState)
		if !ok || push.Seq != r.seq {
			continue
		}
		if msg.From.Kind != transport.KindObject || types.ObjectID(msg.From.Index) != push.ObjectID {
			continue
		}
		st.Acks++
		pair := types.TSVal{TS: push.TS, Val: push.Val.Clone()}
		if cur, seen := latest[push.ObjectID]; !seen || pair.TS > cur.TS {
			latest[push.ObjectID] = pair
		}
		if len(latest) < r.cfg.RoundQuorum() {
			continue
		}
		if best, decided := decide(latest, r.cfg); decided {
			r.stats = st
			return best, nil
		}
	}
}

// decide scans the pushed pairs from the highest timestamp down: a
// candidate refuted by t+b+1 servers (all pushing strictly below it)
// is skipped — it was never completely written; the first unrefuted
// candidate is returned once b+1 servers vouch for it (that exact pair,
// or any higher timestamp), and blocks the decision until then. ⟨0,⊥⟩
// is returnable once everything above it is refuted. This is the same
// refute-or-support scan as the core reader's predicates: it can never
// return a pair older than the last completed write (its ≥ t+1 correct
// holders can never be outnumbered into refutation), and Byzantine
// fabrications above it can only delay, not mislead.
func decide(latest map[types.ObjectID]types.TSVal, cfg quorum.Config) (types.TSVal, bool) {
	cands := map[string]types.TSVal{"0|": types.InitTSVal()}
	for _, p := range latest {
		cands[fmt.Sprintf("%d|%s", p.TS, string(p.Val))] = p
	}
	ordered := make([]types.TSVal, 0, len(cands))
	for _, c := range cands {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].TS > ordered[b].TS })
	for _, c := range ordered {
		refuters, witnesses := 0, 0
		for _, p := range latest {
			// Strictly below c, or the same timestamp with a different
			// value (one value per timestamp under a correct writer),
			// contradicts c.
			if p.TS < c.TS || (p.TS == c.TS && !p.Equal(c)) {
				refuters++
			}
			if p.Equal(c) || p.TS > c.TS {
				witnesses++
			}
		}
		if c.TS == 0 {
			return c, true
		}
		if refuters >= cfg.InvalidThreshold() {
			continue
		}
		if witnesses >= cfg.SafeThreshold() {
			return c, true
		}
		return types.TSVal{}, false
	}
	return types.TSVal{}, false
}
