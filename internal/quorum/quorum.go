// Package quorum holds the resilience arithmetic of Byzantine-tolerant
// storage emulations: the optimal-resilience bound S = 2t+b+1 of Martin,
// Alvisi & Dahlin (Minimal Byzantine Storage, DISC 2002), the 2t+2b
// fast-read threshold of Guerraoui & Vukolić (PODC 2006), and helpers for
// validating protocol configurations.
package quorum

import "fmt"

// Config describes a storage configuration: S base objects of which at
// most T may fail and at most B of those failures may be Byzantine.
type Config struct {
	S int // total base objects
	T int // maximum faulty objects (crash + Byzantine)
	B int // maximum Byzantine objects, B ≤ T
	R int // number of readers
}

// OptimalS returns the optimal-resilience object count 2t+b+1.
func OptimalS(t, b int) int { return 2*t + b + 1 }

// FastReadThreshold returns 2t+2b: Proposition 1 proves that no safe
// storage using at most this many objects has all reads fast (1 round).
func FastReadThreshold(t, b int) int { return 2*t + 2*b }

// Optimal returns the optimally resilient configuration for t, b, r.
func Optimal(t, b, r int) Config { return Config{S: OptimalS(t, b), T: t, B: b, R: r} }

// Validate checks the structural constraints of the model (§2 of the
// paper): b ≥ 0, b ≤ t, at least one reader, and S large enough for
// wait-free emulation (S ≥ 2t+b+1).
func (c Config) Validate() error {
	switch {
	case c.B < 0:
		return fmt.Errorf("quorum: b = %d must be non-negative", c.B)
	case c.T < c.B:
		return fmt.Errorf("quorum: t = %d must be at least b = %d", c.T, c.B)
	case c.R < 1:
		return fmt.Errorf("quorum: need at least one reader, got %d", c.R)
	case c.S < OptimalS(c.T, c.B):
		return fmt.Errorf("quorum: S = %d below optimal resilience 2t+b+1 = %d",
			c.S, OptimalS(c.T, c.B))
	}
	return nil
}

// IsOptimal reports whether the configuration uses exactly 2t+b+1 objects.
func (c Config) IsOptimal() bool { return c.S == OptimalS(c.T, c.B) }

// FastReadPossible reports whether the configuration is above the
// Proposition 1 threshold, i.e. S > 2t+2b, where single-round reads are
// not excluded by the lower bound.
func (c Config) FastReadPossible() bool { return c.S > FastReadThreshold(c.T, c.B) }

// RoundQuorum returns S−t, the number of replies a client can safely
// await in every communication round (§2.3).
func (c Config) RoundQuorum() int { return c.S - c.T }

// SafeThreshold returns b+1, the support needed for the safe(c)
// predicate: more confirmations than there are Byzantine objects.
func (c Config) SafeThreshold() int { return c.B + 1 }

// InvalidThreshold returns t+b+1, the witness count at which a candidate
// is discarded (RespondedWO in Fig. 4, invalid(c) in Fig. 6).
func (c Config) InvalidThreshold() int { return c.T + c.B + 1 }

// MaxCorrect returns S−t, the minimum number of correct objects.
func (c Config) MaxCorrect() int { return c.S - c.T }

// NonMalicious returns S−b, the minimum number of non-Byzantine objects.
func (c Config) NonMalicious() int { return c.S - c.B }

// String renders the configuration for tables and logs.
func (c Config) String() string {
	return fmt.Sprintf("S=%d t=%d b=%d R=%d", c.S, c.T, c.B, c.R)
}

// Blocks is the T1/T2/B1/B2 partition used by the Proposition 1 proof:
// T1 and T2 of size exactly t, B1 and B2 of size ≥1 and ≤b, covering all
// S = 2t+2b objects.
type Blocks struct {
	T1, T2, B1, B2 []int
}

// PartitionBlocks splits object indices 0..S-1 (S = 2t+2b required) into
// the proof's four blocks: T1 = first t, B1 = next b, B2 = next b,
// T2 = last t.
func PartitionBlocks(t, b int) (Blocks, error) {
	if b < 1 {
		return Blocks{}, fmt.Errorf("quorum: proposition 1 assumes b ≥ 1, got %d", b)
	}
	if t < b {
		return Blocks{}, fmt.Errorf("quorum: t = %d must be at least b = %d", t, b)
	}
	s := FastReadThreshold(t, b)
	idx := make([]int, s)
	for i := range idx {
		idx[i] = i
	}
	return Blocks{
		T1: idx[0:t],
		B1: idx[t : t+b],
		B2: idx[t+b : t+2*b],
		T2: idx[t+2*b:],
	}, nil
}
