package quorum

import (
	"testing"
	"testing/quick"
)

func TestOptimalS(t *testing.T) {
	cases := []struct{ t, b, want int }{
		{1, 1, 4}, {2, 1, 6}, {2, 2, 7}, {3, 1, 8}, {3, 3, 10}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := OptimalS(c.t, c.b); got != c.want {
			t.Errorf("OptimalS(%d,%d) = %d, want %d", c.t, c.b, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"optimal", Optimal(2, 1, 1), true},
		{"extra objects", Config{S: 10, T: 2, B: 1, R: 1}, true},
		{"below optimal", Config{S: 5, T: 2, B: 1, R: 1}, false},
		{"negative b", Config{S: 6, T: 2, B: -1, R: 1}, false},
		{"b exceeds t", Config{S: 8, T: 2, B: 3, R: 1}, false},
		{"no readers", Config{S: 6, T: 2, B: 1, R: 0}, false},
		{"crash-only", Config{S: 3, T: 1, B: 0, R: 1}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestThresholds(t *testing.T) {
	cfg := Optimal(2, 1, 3) // S = 6
	if got := cfg.RoundQuorum(); got != 4 {
		t.Errorf("RoundQuorum = %d, want 4 (S−t)", got)
	}
	if got := cfg.SafeThreshold(); got != 2 {
		t.Errorf("SafeThreshold = %d, want 2 (b+1)", got)
	}
	if got := cfg.InvalidThreshold(); got != 4 {
		t.Errorf("InvalidThreshold = %d, want 4 (t+b+1)", got)
	}
	if got := cfg.NonMalicious(); got != 5 {
		t.Errorf("NonMalicious = %d, want 5 (S−b)", got)
	}
	if !cfg.IsOptimal() {
		t.Error("Optimal config must report IsOptimal")
	}
	if cfg.FastReadPossible() {
		t.Error("S = 2t+b+1 ≤ 2t+2b for b≥1: fast reads excluded")
	}
	above := Config{S: FastReadThreshold(2, 1) + 1, T: 2, B: 1, R: 1}
	if !above.FastReadPossible() {
		t.Error("S = 2t+2b+1 is above the fast-read threshold")
	}
}

func TestPartitionBlocks(t *testing.T) {
	for _, c := range []struct{ t, b int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 4}} {
		blocks, err := PartitionBlocks(c.t, c.b)
		if err != nil {
			t.Fatalf("t=%d b=%d: %v", c.t, c.b, err)
		}
		if len(blocks.T1) != c.t || len(blocks.T2) != c.t {
			t.Errorf("t=%d b=%d: |T1|=%d |T2|=%d, want %d", c.t, c.b, len(blocks.T1), len(blocks.T2), c.t)
		}
		if len(blocks.B1) != c.b || len(blocks.B2) != c.b {
			t.Errorf("t=%d b=%d: |B1|=%d |B2|=%d, want %d", c.t, c.b, len(blocks.B1), len(blocks.B2), c.b)
		}
		// Blocks partition 0..2t+2b−1.
		seen := map[int]bool{}
		for _, blk := range [][]int{blocks.T1, blocks.B1, blocks.B2, blocks.T2} {
			for _, i := range blk {
				if seen[i] {
					t.Fatalf("t=%d b=%d: index %d appears twice", c.t, c.b, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != FastReadThreshold(c.t, c.b) {
			t.Errorf("t=%d b=%d: partition covers %d of %d", c.t, c.b, len(seen), FastReadThreshold(c.t, c.b))
		}
	}
}

func TestPartitionBlocksRejectsBadInput(t *testing.T) {
	if _, err := PartitionBlocks(2, 0); err == nil {
		t.Error("b = 0 must be rejected (Proposition 1 assumes b ≥ 1)")
	}
	if _, err := PartitionBlocks(1, 2); err == nil {
		t.Error("b > t must be rejected")
	}
}

// Property: the paper's quorum arithmetic identities hold for every
// valid (t, b).
func TestQuickArithmeticIdentities(t *testing.T) {
	f := func(tRaw, bRaw uint8) bool {
		tt := int(tRaw%8) + 1
		b := int(bRaw%uint8(tt)) + 1 // 1 ≤ b ≤ t
		if b > tt {
			return true
		}
		cfg := Optimal(tt, b, 1)
		// S − t = t+b+1: a round quorum always contains a majority of
		// the non-faulty and intersects any other round quorum in ≥ b+1.
		if cfg.RoundQuorum() != tt+b+1 {
			return false
		}
		if 2*cfg.RoundQuorum()-cfg.S < b+1 {
			return false
		}
		// The optimal S is within the fast-read-impossible regime.
		if cfg.S > FastReadThreshold(tt, b) && b >= 1 {
			return false
		}
		// Safe threshold is achievable by correct objects alone.
		return cfg.SafeThreshold() <= cfg.S-cfg.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
