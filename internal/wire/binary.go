package wire

// A hand-rolled compact binary codec for the protocol messages, as an
// alternative to gob. gob is self-describing and pays a per-message
// type-dictionary cost that dominates the small control messages these
// protocols exchange; the compact codec writes a one-byte tag followed
// by varint-packed fields. BenchmarkCodecComparison (binary_test.go)
// quantifies the difference; integrators embedding the library in a
// bandwidth-sensitive deployment can frame connections with
// EncodeCompact/DecodeCompact instead of Encode/Decode — both sides of
// every message type round-trip exactly.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/types"
)

// Message tags. Stable on-wire values: append only.
const (
	tagPWReq byte = iota + 1
	tagPWAck
	tagWReq
	tagWAck
	tagReadReq
	tagReadAck
	tagReadAckHist
	tagBaselineWriteReq
	tagBaselineWriteAck
	tagBaselineReadReq
	tagBaselineReadAck
	tagPairsReadAck
	tagSubscribeReq
	tagPushState
	tagRegOp
	tagBatch
	tagEpoch
	tagStateReq
	tagStateResp
	tagConfigEpoch
	tagConfigUpdate
	tagBusy
)

// enc is a little append-only writer with varint packing.
type enc struct{ buf bytes.Buffer }

func (e *enc) u(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *enc) i(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *enc) bytes(b []byte) {
	e.u(uint64(len(b)))
	e.buf.Write(b)
}

// optBytes distinguishes nil (⊥) from empty.
func (e *enc) optBytes(b []byte) {
	if b == nil {
		e.buf.WriteByte(0)
		return
	}
	e.buf.WriteByte(1)
	e.bytes(b)
}

func (e *enc) tsval(tv types.TSVal) {
	e.i(int64(tv.TS))
	e.optBytes(tv.Val)
}

func (e *enc) tsrVector(v types.TSRVector) {
	if v == nil {
		e.buf.WriteByte(0)
		return
	}
	e.buf.WriteByte(1)
	e.u(uint64(len(v)))
	for _, r := range v {
		e.i(int64(r))
	}
}

func (e *enc) tsrMatrix(m types.TSRMatrix) {
	ids := make([]types.ObjectID, 0, len(m))
	for id, vec := range m {
		if vec != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	e.u(uint64(len(ids)))
	for _, id := range ids {
		e.i(int64(id))
		e.tsrVector(m[id])
	}
}

func (e *enc) wtuple(w types.WTuple) {
	e.tsval(w.TSVal)
	e.tsrMatrix(w.TSR)
}

func (e *enc) history(h types.History) {
	tss := h.Timestamps()
	e.u(uint64(len(tss)))
	for _, ts := range tss {
		entry := h[ts]
		e.i(int64(ts))
		e.tsval(entry.PW)
		if entry.W == nil {
			e.buf.WriteByte(0)
		} else {
			e.buf.WriteByte(1)
			e.wtuple(*entry.W)
		}
	}
}

// dec is the matching reader; the first error sticks.
type dec struct {
	r   *bytes.Reader
	err error
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

// maxLen caps length prefixes: a Byzantine peer must not make us
// allocate unbounded memory from a tiny frame.
const maxLen = 1 << 26

func (d *dec) bytesN() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > maxLen || int64(n) > int64(d.r.Len()) {
		d.err = fmt.Errorf("wire: length %d exceeds frame", n)
		return nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(d.r, out); err != nil {
		d.err = err
		return nil
	}
	return out
}

func (d *dec) optBytes() []byte {
	if d.byte() == 0 {
		return nil
	}
	return d.bytesN()
}

func (d *dec) tsval() types.TSVal {
	ts := types.TS(d.i())
	return types.TSVal{TS: ts, Val: d.optBytes()}
}

func (d *dec) tsrVector() types.TSRVector {
	if d.byte() == 0 {
		return nil
	}
	n := d.u()
	// Each entry is at least one varint byte, so a count above the
	// remaining frame is provably bogus — reject before allocating.
	if d.err != nil || n > maxLen || int64(n) > int64(d.r.Len()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: vector length %d", n)
		}
		return nil
	}
	out := make(types.TSRVector, n)
	for i := range out {
		out[i] = types.ReaderTS(d.i())
	}
	return out
}

func (d *dec) tsrMatrix() types.TSRMatrix {
	n := d.u()
	if d.err != nil || n > maxLen || int64(n) > int64(d.r.Len()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: matrix length %d", n)
		}
		return nil
	}
	m := types.NewTSRMatrix()
	for i := uint64(0); i < n && d.err == nil; i++ {
		id := types.ObjectID(d.i())
		m[id] = d.tsrVector()
	}
	return m
}

func (d *dec) wtuple() types.WTuple {
	return types.WTuple{TSVal: d.tsval(), TSR: d.tsrMatrix()}
}

func (d *dec) history() types.History {
	n := d.u()
	if d.err != nil || n > maxLen || int64(n) > int64(d.r.Len()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: history length %d", n)
		}
		return nil
	}
	h := make(types.History) // grows on demand; n is attacker-controlled
	for i := uint64(0); i < n && d.err == nil; i++ {
		ts := types.TS(d.i())
		entry := types.HistEntry{PW: d.tsval()}
		if d.byte() == 1 {
			w := d.wtuple()
			entry.W = &w
		}
		h[ts] = entry
	}
	return h
}

// EncodeCompact serializes a message with the compact codec.
func EncodeCompact(m Msg) ([]byte, error) {
	var e enc
	switch v := m.(type) {
	case PWReq:
		e.buf.WriteByte(tagPWReq)
		e.i(int64(v.TS))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case PWAck:
		e.buf.WriteByte(tagPWAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
		e.tsrVector(v.TSR)
	case WReq:
		e.buf.WriteByte(tagWReq)
		e.i(int64(v.TS))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case WAck:
		e.buf.WriteByte(tagWAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
	case ReadReq:
		e.buf.WriteByte(tagReadReq)
		e.i(int64(v.Round))
		e.i(int64(v.Reader))
		e.i(int64(v.TSR))
		e.i(int64(v.CacheTS))
	case ReadAck:
		e.buf.WriteByte(tagReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Round))
		e.i(int64(v.TSR))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case ReadAckHist:
		e.buf.WriteByte(tagReadAckHist)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Round))
		e.i(int64(v.TSR))
		e.history(v.History)
	case BaselineWriteReq:
		e.buf.WriteByte(tagBaselineWriteReq)
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		e.bytes(v.Sig)
	case BaselineWriteAck:
		e.buf.WriteByte(tagBaselineWriteAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
	case BaselineReadReq:
		e.buf.WriteByte(tagBaselineReadReq)
		e.i(int64(v.Attempt))
		e.i(int64(v.Reader))
	case BaselineReadAck:
		e.buf.WriteByte(tagBaselineReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Attempt))
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		e.bytes(v.Sig)
	case PairsReadAck:
		e.buf.WriteByte(tagPairsReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Attempt))
		e.tsval(v.PW)
		e.tsval(v.W)
	case SubscribeReq:
		e.buf.WriteByte(tagSubscribeReq)
		e.i(int64(v.Reader))
		e.i(v.Seq)
	case PushState:
		e.buf.WriteByte(tagPushState)
		e.i(int64(v.ObjectID))
		e.i(v.Seq)
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		if v.Echo {
			e.buf.WriteByte(1)
		} else {
			e.buf.WriteByte(0)
		}
	case RegOp:
		e.buf.WriteByte(tagRegOp)
		e.bytes([]byte(v.Reg))
		sub, err := EncodeCompact(v.Msg)
		if err != nil {
			return nil, err
		}
		e.bytes(sub)
	case Batch:
		e.buf.WriteByte(tagBatch)
		e.u(uint64(len(v.Ops)))
		for _, op := range v.Ops {
			sub, err := EncodeCompact(op)
			if err != nil {
				return nil, err
			}
			e.bytes(sub)
		}
	case Epoch:
		e.buf.WriteByte(tagEpoch)
		e.i(v.Inc)
		sub, err := EncodeCompact(v.Msg)
		if err != nil {
			return nil, err
		}
		e.bytes(sub)
	case StateReq:
		e.buf.WriteByte(tagStateReq)
		e.i(v.Seq)
		e.i(int64(v.Requester))
	case StateResp:
		e.buf.WriteByte(tagStateResp)
		e.i(int64(v.ObjectID))
		e.i(v.Seq)
		e.i(v.Incarnation)
		e.u(uint64(len(v.Regs)))
		for _, rs := range v.Regs {
			e.bytes([]byte(rs.Reg))
			e.i(int64(rs.TS))
			e.history(rs.History)
			e.tsrVector(rs.TSR)
		}
	case ConfigEpoch:
		e.buf.WriteByte(tagConfigEpoch)
		e.i(v.Epoch)
		sub, err := EncodeCompact(v.Msg)
		if err != nil {
			return nil, err
		}
		e.bytes(sub)
	case Busy:
		e.buf.WriteByte(tagBusy)
		sub, err := EncodeCompact(v.Msg)
		if err != nil {
			return nil, err
		}
		e.bytes(sub)
	case ConfigUpdate:
		e.buf.WriteByte(tagConfigUpdate)
		e.i(v.Shard)
		e.i(v.Epoch)
		e.u(uint64(len(v.Members)))
		for _, m := range v.Members {
			e.i(m)
		}
		e.bytes(v.Sig)
	default:
		return nil, fmt.Errorf("wire: compact codec: unknown message %T", m)
	}
	return e.buf.Bytes(), nil
}

// maxNest caps RegOp/Batch/Epoch/ConfigEpoch/Busy nesting during
// decode. Legitimate frames nest at most five levels (a Busy echo of a
// Batch of ConfigEpoch-stamped, Epoch-stamped RegOps on the flow-,
// membership- and recovery-enabled path); without a cap, a Byzantine
// peer could craft a deeply self-nested frame whose recursive decode
// exhausts the stack — a fatal, unrecoverable runtime error.
const maxNest = 6

// DecodeCompact deserializes a message produced by EncodeCompact.
func DecodeCompact(data []byte) (Msg, error) {
	return decodeCompact(data, 0)
}

func decodeCompact(data []byte, depth int) (Msg, error) {
	if depth > maxNest {
		return nil, fmt.Errorf("wire: compact codec: nesting exceeds %d levels", maxNest)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: compact codec: empty frame")
	}
	d := &dec{r: bytes.NewReader(data[1:])}
	var m Msg
	switch data[0] {
	case tagPWReq:
		m = PWReq{TS: types.TS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagPWAck:
		m = PWAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i()), TSR: d.tsrVector()}
	case tagWReq:
		m = WReq{TS: types.TS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagWAck:
		m = WAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i())}
	case tagReadReq:
		m = ReadReq{Round: Round(d.i()), Reader: types.ReaderID(d.i()), TSR: types.ReaderTS(d.i()), CacheTS: types.TS(d.i())}
	case tagReadAck:
		m = ReadAck{ObjectID: types.ObjectID(d.i()), Round: Round(d.i()), TSR: types.ReaderTS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagReadAckHist:
		m = ReadAckHist{ObjectID: types.ObjectID(d.i()), Round: Round(d.i()), TSR: types.ReaderTS(d.i()), History: d.history()}
	case tagBaselineWriteReq:
		m = BaselineWriteReq{TS: types.TS(d.i()), Val: d.optBytes(), Sig: d.bytesN()}
	case tagBaselineWriteAck:
		m = BaselineWriteAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i())}
	case tagBaselineReadReq:
		m = BaselineReadReq{Attempt: int(d.i()), Reader: types.ReaderID(d.i())}
	case tagBaselineReadAck:
		m = BaselineReadAck{ObjectID: types.ObjectID(d.i()), Attempt: int(d.i()), TS: types.TS(d.i()), Val: d.optBytes(), Sig: d.bytesN()}
	case tagPairsReadAck:
		m = PairsReadAck{ObjectID: types.ObjectID(d.i()), Attempt: int(d.i()), PW: d.tsval(), W: d.tsval()}
	case tagSubscribeReq:
		m = SubscribeReq{Reader: types.ReaderID(d.i()), Seq: d.i()}
	case tagPushState:
		m = PushState{ObjectID: types.ObjectID(d.i()), Seq: d.i(), TS: types.TS(d.i()), Val: d.optBytes(), Echo: d.byte() == 1}
	case tagRegOp:
		reg := string(d.bytesN())
		sub := d.bytesN()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: reg op payload: %w", err)
			}
			m = RegOp{Reg: reg, Msg: inner}
		}
	case tagBatch:
		n := d.u()
		// Each op costs at least one length byte; a count above the
		// remaining frame is provably bogus.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.r.Len())) {
			d.err = fmt.Errorf("wire: batch length %d", n)
		}
		if d.err != nil {
			n = 0 // never size an allocation from a rejected count
		}
		ops := make([]Msg, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			sub := d.bytesN()
			if d.err != nil {
				break
			}
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: batch op %d: %w", i, err)
			}
			ops = append(ops, inner)
		}
		m = Batch{Ops: ops}
	case tagEpoch:
		inc := d.i()
		sub := d.bytesN()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: epoch payload: %w", err)
			}
			m = Epoch{Inc: inc, Msg: inner}
		}
	case tagConfigEpoch:
		epoch := d.i()
		sub := d.bytesN()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: config epoch payload: %w", err)
			}
			m = ConfigEpoch{Epoch: epoch, Msg: inner}
		}
	case tagConfigUpdate:
		cu := ConfigUpdate{Shard: d.i(), Epoch: d.i()}
		n := d.u()
		// Each member is at least one varint byte; a count above the
		// remaining frame is provably bogus — reject before allocating.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.r.Len())) {
			d.err = fmt.Errorf("wire: member list length %d", n)
		}
		if d.err != nil {
			n = 0
		}
		cu.Members = make([]int64, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			cu.Members = append(cu.Members, d.i())
		}
		cu.Sig = d.bytesN()
		m = cu
	case tagBusy:
		sub := d.bytesN()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: busy payload: %w", err)
			}
			m = Busy{Msg: inner}
		}
	case tagStateReq:
		m = StateReq{Seq: d.i(), Requester: types.ObjectID(d.i())}
	case tagStateResp:
		resp := StateResp{ObjectID: types.ObjectID(d.i()), Seq: d.i(), Incarnation: d.i()}
		n := d.u()
		// Each register costs at least a few bytes; a count above the
		// remaining frame is provably bogus — reject before allocating.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.r.Len())) {
			d.err = fmt.Errorf("wire: state resp length %d", n)
		}
		if d.err != nil {
			n = 0
		}
		resp.Regs = make([]RegState, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			rs := RegState{Reg: string(d.bytesN()), TS: types.TS(d.i())}
			rs.History = d.history()
			rs.TSR = d.tsrVector()
			resp.Regs = append(resp.Regs, rs)
		}
		m = resp
	default:
		return nil, fmt.Errorf("wire: compact codec: unknown tag %d", data[0])
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: compact codec: %w", d.err)
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("wire: compact codec: %d trailing bytes", d.r.Len())
	}
	return m, nil
}

// CompactSize returns the compact-codec size of a message in bytes
// (math.MaxInt for unencodable messages, which cannot happen for
// well-formed payloads).
func CompactSize(m Msg) int {
	data, err := EncodeCompact(m)
	if err != nil {
		return math.MaxInt
	}
	return len(data)
}
