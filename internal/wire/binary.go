package wire

// A hand-rolled compact binary codec for the protocol messages, as an
// alternative to gob. gob is self-describing and pays a per-message
// type-dictionary cost that dominates the small control messages these
// protocols exchange; the compact codec writes a one-byte tag followed
// by varint-packed fields. BenchmarkCodecComparison (binary_test.go)
// quantifies the difference; integrators embedding the library in a
// bandwidth-sensitive deployment can frame connections with
// EncodeCompact/DecodeCompact instead of Encode/Decode — both sides of
// every message type round-trip exactly.
//
// The codec is built for the batched hot path:
//
//   - AppendCompact encodes into a caller-supplied buffer, so a
//     transport can reuse one scratch buffer per connection and reach
//     zero steady-state allocations per frame (tcpnet does).
//   - Nested messages (RegOp, Batch, Epoch, ConfigEpoch, Busy) are
//     encoded directly into the outgoing frame: the length prefix is
//     reserved as a fixed-width padded varint and backfilled once the
//     payload is in place, instead of marshalling the sub-message to a
//     temporary buffer and copying it in. A Batch of 64 RegOps is one
//     buffer, not 129.
//   - Decoding walks a cursor over the input and hands nested payloads
//     to the recursive decoder as sub-slice views, copying only the
//     leaf byte fields the decoded message must own.
//   - EncodeCompact and CompactSize draw their scratch buffers from a
//     sync.Pool; buffers are length-reset on reuse and never leak
//     bytes between messages (pool_test.go pins this under -race).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/types"
)

// Message tags. Stable on-wire values: append only.
const (
	tagPWReq byte = iota + 1
	tagPWAck
	tagWReq
	tagWAck
	tagReadReq
	tagReadAck
	tagReadAckHist
	tagBaselineWriteReq
	tagBaselineWriteAck
	tagBaselineReadReq
	tagBaselineReadAck
	tagPairsReadAck
	tagSubscribeReq
	tagPushState
	tagRegOp
	tagBatch
	tagEpoch
	tagStateReq
	tagStateResp
	tagConfigEpoch
	tagConfigUpdate
	tagBusy
)

// subLenWidth is the fixed byte width of a nested-message length
// prefix. Nested payloads are framed with a zero-padded uvarint of
// exactly this width so the encoder can reserve the prefix, encode the
// payload in place, and backfill the length — no temporary buffer, no
// copy. binary.Uvarint accepts the non-canonical padding.
const subLenWidth = 4

// maxSubLen is the largest nested payload subLenWidth bytes can frame
// (2^28-1, comfortably above maxLen).
const maxSubLen = 1<<(7*subLenWidth) - 1

// enc is a little append-only writer with varint packing.
type enc struct{ b []byte }

// maxPooledBuf bounds the capacity retained by pooled encoder buffers:
// a one-off giant state transfer must not pin its footprint forever.
const maxPooledBuf = 1 << 16

var encPool = sync.Pool{New: func() interface{} { return new(enc) }}

func (e *enc) u(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *enc) i(v int64) { e.b = binary.AppendVarint(e.b, v) }

func (e *enc) byte(c byte) { e.b = append(e.b, c) }

func (e *enc) bytes(p []byte) {
	e.u(uint64(len(p)))
	e.b = append(e.b, p...)
}

// str writes a length-prefixed string without converting it to []byte.
func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

// optBytes distinguishes nil (⊥) from empty.
func (e *enc) optBytes(p []byte) {
	if p == nil {
		e.byte(0)
		return
	}
	e.byte(1)
	e.bytes(p)
}

// beginNested reserves a fixed-width length prefix for a nested message
// and returns the payload start offset for endNested.
func (e *enc) beginNested() int {
	e.b = append(e.b, 0x80, 0x80, 0x80, 0x00)
	return len(e.b)
}

// endNested backfills the reserved prefix with the padded-uvarint length
// of everything appended since beginNested.
func (e *enc) endNested(start int) error {
	n := len(e.b) - start
	if n > maxSubLen {
		return fmt.Errorf("wire: nested payload %d bytes exceeds frame cap", n)
	}
	e.b[start-4] = byte(n)&0x7f | 0x80
	e.b[start-3] = byte(n>>7)&0x7f | 0x80
	e.b[start-2] = byte(n>>14)&0x7f | 0x80
	e.b[start-1] = byte(n >> 21)
	return nil
}

// nested encodes a wrapped message in place behind its length prefix.
func (e *enc) nested(m Msg) error {
	start := e.beginNested()
	if err := e.msg(m); err != nil {
		return err
	}
	return e.endNested(start)
}

func (e *enc) tsval(tv types.TSVal) {
	e.i(int64(tv.TS))
	e.optBytes(tv.Val)
}

func (e *enc) tsrVector(v types.TSRVector) {
	if v == nil {
		e.byte(0)
		return
	}
	e.byte(1)
	e.u(uint64(len(v)))
	for _, r := range v {
		e.i(int64(r))
	}
}

func (e *enc) tsrMatrix(m types.TSRMatrix) {
	if len(m) == 0 {
		e.u(0)
		return
	}
	ids := make([]types.ObjectID, 0, len(m))
	for id, vec := range m {
		if vec != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	e.u(uint64(len(ids)))
	for _, id := range ids {
		e.i(int64(id))
		e.tsrVector(m[id])
	}
}

func (e *enc) wtuple(w types.WTuple) {
	e.tsval(w.TSVal)
	e.tsrMatrix(w.TSR)
}

func (e *enc) history(h types.History) {
	tss := h.Timestamps()
	e.u(uint64(len(tss)))
	for _, ts := range tss {
		entry := h[ts]
		e.i(int64(ts))
		e.tsval(entry.PW)
		if entry.W == nil {
			e.byte(0)
		} else {
			e.byte(1)
			e.wtuple(*entry.W)
		}
	}
}

// msg appends one tagged message.
func (e *enc) msg(m Msg) error {
	switch v := m.(type) {
	case PWReq:
		e.byte(tagPWReq)
		e.i(int64(v.TS))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case PWAck:
		e.byte(tagPWAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
		e.tsrVector(v.TSR)
	case WReq:
		e.byte(tagWReq)
		e.i(int64(v.TS))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case WAck:
		e.byte(tagWAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
	case ReadReq:
		e.byte(tagReadReq)
		e.i(int64(v.Round))
		e.i(int64(v.Reader))
		e.i(int64(v.TSR))
		e.i(int64(v.CacheTS))
		if v.Repair == nil {
			e.byte(0)
		} else {
			e.byte(1)
			e.wtuple(*v.Repair)
		}
	case ReadAck:
		e.byte(tagReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Round))
		e.i(int64(v.TSR))
		e.tsval(v.PW)
		e.wtuple(v.W)
	case ReadAckHist:
		e.byte(tagReadAckHist)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Round))
		e.i(int64(v.TSR))
		e.history(v.History)
	case BaselineWriteReq:
		e.byte(tagBaselineWriteReq)
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		e.bytes(v.Sig)
	case BaselineWriteAck:
		e.byte(tagBaselineWriteAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.TS))
	case BaselineReadReq:
		e.byte(tagBaselineReadReq)
		e.i(int64(v.Attempt))
		e.i(int64(v.Reader))
	case BaselineReadAck:
		e.byte(tagBaselineReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Attempt))
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		e.bytes(v.Sig)
	case PairsReadAck:
		e.byte(tagPairsReadAck)
		e.i(int64(v.ObjectID))
		e.i(int64(v.Attempt))
		e.tsval(v.PW)
		e.tsval(v.W)
	case SubscribeReq:
		e.byte(tagSubscribeReq)
		e.i(int64(v.Reader))
		e.i(v.Seq)
	case PushState:
		e.byte(tagPushState)
		e.i(int64(v.ObjectID))
		e.i(v.Seq)
		e.i(int64(v.TS))
		e.optBytes(v.Val)
		if v.Echo {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case RegOp:
		e.byte(tagRegOp)
		e.str(v.Reg)
		e.u(v.Op)
		return e.nested(v.Msg)
	case Batch:
		e.byte(tagBatch)
		e.u(uint64(len(v.Ops)))
		for _, op := range v.Ops {
			if err := e.nested(op); err != nil {
				return err
			}
		}
	case Epoch:
		e.byte(tagEpoch)
		e.i(v.Inc)
		return e.nested(v.Msg)
	case StateReq:
		e.byte(tagStateReq)
		e.i(v.Seq)
		e.i(int64(v.Requester))
	case StateResp:
		e.byte(tagStateResp)
		e.i(int64(v.ObjectID))
		e.i(v.Seq)
		e.i(v.Incarnation)
		e.u(uint64(len(v.Regs)))
		for _, rs := range v.Regs {
			e.str(rs.Reg)
			e.i(int64(rs.TS))
			e.history(rs.History)
			e.tsrVector(rs.TSR)
		}
	case ConfigEpoch:
		e.byte(tagConfigEpoch)
		e.i(v.Epoch)
		return e.nested(v.Msg)
	case Busy:
		e.byte(tagBusy)
		return e.nested(v.Msg)
	case ConfigUpdate:
		e.byte(tagConfigUpdate)
		e.i(v.Shard)
		e.i(v.Epoch)
		e.u(uint64(len(v.Members)))
		for _, m := range v.Members {
			e.i(m)
		}
		e.bytes(v.Sig)
	default:
		return fmt.Errorf("wire: compact codec: unknown message %T", m)
	}
	return nil
}

// AppendCompact serializes a message with the compact codec, appending
// the encoding to dst and returning the extended buffer. Callers that
// hold a reusable scratch buffer (one per connection, or drawn from a
// pool) encode with zero per-frame allocations.
func AppendCompact(dst []byte, m Msg) ([]byte, error) {
	e := enc{b: dst}
	if err := e.msg(m); err != nil {
		return dst, err
	}
	return e.b, nil
}

// EncodeCompact serializes a message with the compact codec into a
// fresh, caller-owned buffer. The working buffer comes from a pool, so
// the only allocation is the exact-size result.
func EncodeCompact(m Msg) ([]byte, error) {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	if err := e.msg(m); err != nil {
		putEnc(e)
		return nil, err
	}
	out := make([]byte, len(e.b))
	copy(out, e.b)
	putEnc(e)
	return out, nil
}

// putEnc returns an encoder to the pool unless its buffer has grown
// past the retention cap.
func putEnc(e *enc) {
	if cap(e.b) <= maxPooledBuf {
		encPool.Put(e)
	}
}

// dec is the matching reader: a cursor over the frame; the first error
// sticks.
type dec struct {
	b   []byte
	off int
	err error
}

// rem returns the bytes left in the frame.
func (d *dec) rem() int { return len(d.b) - d.off }

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("wire: bad uvarint: %w", io.ErrUnexpectedEOF)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("wire: bad varint: %w", io.ErrUnexpectedEOF)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

// maxLen caps length prefixes: a Byzantine peer must not make us
// allocate unbounded memory from a tiny frame.
const maxLen = 1 << 26

// bytesN copies out a length-prefixed byte field. Decoded messages own
// their data (the frame buffer may be pooled and reused), so leaf byte
// fields copy; nested message payloads use view instead.
func (d *dec) bytesN() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > maxLen || int64(n) > int64(d.rem()) {
		d.err = fmt.Errorf("wire: length %d exceeds frame", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// view returns a length-prefixed sub-frame as a slice of the input —
// no copy. Only the recursive decoder reads it; nothing retains it.
func (d *dec) view() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > maxLen || int64(n) > int64(d.rem()) {
		d.err = fmt.Errorf("wire: length %d exceeds frame", n)
		return nil
	}
	s := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}

func (d *dec) optBytes() []byte {
	if d.byte() == 0 {
		return nil
	}
	return d.bytesN()
}

func (d *dec) tsval() types.TSVal {
	ts := types.TS(d.i())
	return types.TSVal{TS: ts, Val: d.optBytes()}
}

func (d *dec) tsrVector() types.TSRVector {
	if d.byte() == 0 {
		return nil
	}
	n := d.u()
	// Each entry is at least one varint byte, so a count above the
	// remaining frame is provably bogus — reject before allocating.
	if d.err != nil || n > maxLen || int64(n) > int64(d.rem()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: vector length %d", n)
		}
		return nil
	}
	out := make(types.TSRVector, n)
	for i := range out {
		out[i] = types.ReaderTS(d.i())
	}
	return out
}

func (d *dec) tsrMatrix() types.TSRMatrix {
	n := d.u()
	if d.err != nil || n > maxLen || int64(n) > int64(d.rem()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: matrix length %d", n)
		}
		return nil
	}
	m := types.NewTSRMatrix()
	for i := uint64(0); i < n && d.err == nil; i++ {
		id := types.ObjectID(d.i())
		m[id] = d.tsrVector()
	}
	return m
}

func (d *dec) wtuple() types.WTuple {
	return types.WTuple{TSVal: d.tsval(), TSR: d.tsrMatrix()}
}

func (d *dec) history() types.History {
	n := d.u()
	if d.err != nil || n > maxLen || int64(n) > int64(d.rem()) {
		if d.err == nil {
			d.err = fmt.Errorf("wire: history length %d", n)
		}
		return nil
	}
	h := make(types.History) // grows on demand; n is attacker-controlled
	for i := uint64(0); i < n && d.err == nil; i++ {
		ts := types.TS(d.i())
		entry := types.HistEntry{PW: d.tsval()}
		if d.byte() == 1 {
			w := d.wtuple()
			entry.W = &w
		}
		h[ts] = entry
	}
	return h
}

// maxNest caps RegOp/Batch/Epoch/ConfigEpoch/Busy nesting during
// decode. Legitimate frames nest at most five levels (a Busy echo of a
// Batch of ConfigEpoch-stamped, Epoch-stamped RegOps on the flow-,
// membership- and recovery-enabled path); without a cap, a Byzantine
// peer could craft a deeply self-nested frame whose recursive decode
// exhausts the stack — a fatal, unrecoverable runtime error.
const maxNest = 6

// DecodeCompact deserializes a message produced by EncodeCompact. The
// returned message owns all its data; data may be a pooled buffer the
// caller reuses after the call.
func DecodeCompact(data []byte) (Msg, error) {
	return decodeCompact(data, 0)
}

func decodeCompact(data []byte, depth int) (Msg, error) {
	if depth > maxNest {
		return nil, fmt.Errorf("wire: compact codec: nesting exceeds %d levels", maxNest)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: compact codec: empty frame")
	}
	d := dec{b: data[1:]}
	var m Msg
	switch data[0] {
	case tagPWReq:
		m = PWReq{TS: types.TS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagPWAck:
		m = PWAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i()), TSR: d.tsrVector()}
	case tagWReq:
		m = WReq{TS: types.TS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagWAck:
		m = WAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i())}
	case tagReadReq:
		rr := ReadReq{Round: Round(d.i()), Reader: types.ReaderID(d.i()), TSR: types.ReaderTS(d.i()), CacheTS: types.TS(d.i())}
		if d.byte() == 1 {
			rep := d.wtuple()
			rr.Repair = &rep
		}
		m = rr
	case tagReadAck:
		m = ReadAck{ObjectID: types.ObjectID(d.i()), Round: Round(d.i()), TSR: types.ReaderTS(d.i()), PW: d.tsval(), W: d.wtuple()}
	case tagReadAckHist:
		m = ReadAckHist{ObjectID: types.ObjectID(d.i()), Round: Round(d.i()), TSR: types.ReaderTS(d.i()), History: d.history()}
	case tagBaselineWriteReq:
		m = BaselineWriteReq{TS: types.TS(d.i()), Val: d.optBytes(), Sig: d.bytesN()}
	case tagBaselineWriteAck:
		m = BaselineWriteAck{ObjectID: types.ObjectID(d.i()), TS: types.TS(d.i())}
	case tagBaselineReadReq:
		m = BaselineReadReq{Attempt: int(d.i()), Reader: types.ReaderID(d.i())}
	case tagBaselineReadAck:
		m = BaselineReadAck{ObjectID: types.ObjectID(d.i()), Attempt: int(d.i()), TS: types.TS(d.i()), Val: d.optBytes(), Sig: d.bytesN()}
	case tagPairsReadAck:
		m = PairsReadAck{ObjectID: types.ObjectID(d.i()), Attempt: int(d.i()), PW: d.tsval(), W: d.tsval()}
	case tagSubscribeReq:
		m = SubscribeReq{Reader: types.ReaderID(d.i()), Seq: d.i()}
	case tagPushState:
		m = PushState{ObjectID: types.ObjectID(d.i()), Seq: d.i(), TS: types.TS(d.i()), Val: d.optBytes(), Echo: d.byte() == 1}
	case tagRegOp:
		reg := string(d.bytesN())
		op := d.u()
		sub := d.view()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: reg op payload: %w", err)
			}
			m = RegOp{Reg: reg, Op: op, Msg: inner}
		}
	case tagBatch:
		n := d.u()
		// Each op costs at least one length byte; a count above the
		// remaining frame is provably bogus.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.rem())) {
			d.err = fmt.Errorf("wire: batch length %d", n)
		}
		if d.err != nil {
			n = 0 // never size an allocation from a rejected count
		}
		ops := make([]Msg, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			sub := d.view()
			if d.err != nil {
				break
			}
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: batch op %d: %w", i, err)
			}
			ops = append(ops, inner)
		}
		m = Batch{Ops: ops}
	case tagEpoch:
		inc := d.i()
		sub := d.view()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: epoch payload: %w", err)
			}
			m = Epoch{Inc: inc, Msg: inner}
		}
	case tagConfigEpoch:
		epoch := d.i()
		sub := d.view()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: config epoch payload: %w", err)
			}
			m = ConfigEpoch{Epoch: epoch, Msg: inner}
		}
	case tagConfigUpdate:
		cu := ConfigUpdate{Shard: d.i(), Epoch: d.i()}
		n := d.u()
		// Each member is at least one varint byte; a count above the
		// remaining frame is provably bogus — reject before allocating.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.rem())) {
			d.err = fmt.Errorf("wire: member list length %d", n)
		}
		if d.err != nil {
			n = 0
		}
		cu.Members = make([]int64, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			cu.Members = append(cu.Members, d.i())
		}
		cu.Sig = d.bytesN()
		m = cu
	case tagBusy:
		sub := d.view()
		if d.err == nil {
			inner, err := decodeCompact(sub, depth+1)
			if err != nil {
				return nil, fmt.Errorf("wire: compact codec: busy payload: %w", err)
			}
			m = Busy{Msg: inner}
		}
	case tagStateReq:
		m = StateReq{Seq: d.i(), Requester: types.ObjectID(d.i())}
	case tagStateResp:
		resp := StateResp{ObjectID: types.ObjectID(d.i()), Seq: d.i(), Incarnation: d.i()}
		n := d.u()
		// Each register costs at least a few bytes; a count above the
		// remaining frame is provably bogus — reject before allocating.
		if d.err == nil && (n > maxLen || int64(n) > int64(d.rem())) {
			d.err = fmt.Errorf("wire: state resp length %d", n)
		}
		if d.err != nil {
			n = 0
		}
		resp.Regs = make([]RegState, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			rs := RegState{Reg: string(d.bytesN()), TS: types.TS(d.i())}
			rs.History = d.history()
			rs.TSR = d.tsrVector()
			resp.Regs = append(resp.Regs, rs)
		}
		m = resp
	default:
		return nil, fmt.Errorf("wire: compact codec: unknown tag %d", data[0])
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: compact codec: %w", d.err)
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("wire: compact codec: %d trailing bytes", d.rem())
	}
	return m, nil
}

// CompactSize returns the compact-codec size of a message in bytes
// (math.MaxInt for unencodable messages, which cannot happen for
// well-formed payloads). The measurement runs on a pooled buffer and
// allocates nothing.
func CompactSize(m Msg) int {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	err := e.msg(m)
	n := len(e.b)
	putEnc(e)
	if err != nil {
		return math.MaxInt
	}
	return n
}
