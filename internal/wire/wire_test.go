package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// sampleMsgs returns one well-formed instance of every message type.
func sampleMsgs() []Msg {
	w := types.WTuple{
		TSVal: types.TSVal{TS: 7, Val: types.Value("v7")},
		TSR:   types.TSRMatrix{0: types.TSRVector{1, 2}, 3: types.TSRVector{0, 5}},
	}
	h := types.NewHistory()
	h[7] = types.HistEntry{PW: w.TSVal.Clone(), W: &w}
	return []Msg{
		PWReq{TS: 7, PW: w.TSVal, W: w},
		PWAck{ObjectID: 2, TS: 7, TSR: types.TSRVector{3, 4}},
		WReq{TS: 7, PW: w.TSVal, W: w},
		WAck{ObjectID: 1, TS: 7},
		ReadReq{Round: Round2, Reader: 1, TSR: 9, CacheTS: 3, Repair: &w},
		ReadAck{ObjectID: 0, Round: Round1, TSR: 9, PW: w.TSVal, W: w},
		ReadAckHist{ObjectID: 4, Round: Round2, TSR: 10, History: h},
		BaselineWriteReq{TS: 3, Val: types.Value("x"), Sig: []byte{1, 2}},
		BaselineWriteAck{ObjectID: 5, TS: 3},
		BaselineReadReq{Attempt: 2, Reader: 0},
		BaselineReadAck{ObjectID: 5, Attempt: 2, TS: 3, Val: types.Value("x"), Sig: []byte{9}},
		PairsReadAck{ObjectID: 6, Attempt: 1, PW: w.TSVal, W: w.TSVal},
		SubscribeReq{Reader: 0, Seq: 11},
		PushState{ObjectID: 2, Seq: 11, TS: 7, Val: types.Value("p"), Echo: true},
		RegOp{Reg: "users/42", Op: 91, Msg: WAck{ObjectID: 1, TS: 7}},
		Batch{Ops: []Msg{
			RegOp{Reg: "a", Op: 92, Msg: PWReq{TS: 7, PW: w.TSVal, W: w}},
			RegOp{Reg: "b", Msg: ReadReq{Round: Round1, Reader: 1, TSR: 9}},
			WAck{ObjectID: 1, TS: 7},
		}},
		Epoch{Inc: 3, Msg: RegOp{Reg: "users/42", Op: 93, Msg: WAck{ObjectID: 1, TS: 7}}},
		Busy{Msg: Batch{Ops: []Msg{
			RegOp{Reg: "a", Op: 94, Msg: PWReq{TS: 7, PW: w.TSVal, W: w}},
			RegOp{Reg: "b", Msg: ReadReq{Round: Round1, Reader: 1, TSR: 9}},
		}}},
		StateReq{Seq: 12, Requester: 2},
		StateResp{ObjectID: 3, Seq: 12, Incarnation: 2, Regs: []RegState{
			{Reg: "users/42", TS: 7, History: h, TSR: types.TSRVector{1, 0}},
			{Reg: "empty", History: types.NewHistory(), TSR: types.NewTSRVector(2)},
		}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if reflect.TypeOf(back) != reflect.TypeOf(m) {
			t.Fatalf("round-trip changed type: %T → %T", m, back)
		}
	}
}

func TestRoundTripPreservesPayloads(t *testing.T) {
	orig := sampleMsgs()[5].(ReadAck)
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(ReadAck)
	if got.ObjectID != orig.ObjectID || got.Round != orig.Round || got.TSR != orig.TSR {
		t.Errorf("scalar fields changed: %+v vs %+v", got, orig)
	}
	if !got.PW.Equal(orig.PW) || !got.W.Equal(orig.W) {
		t.Errorf("payload fields changed: %+v vs %+v", got, orig)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Error("garbage must not decode")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input must not decode")
	}
}

func TestEncodedSizePositive(t *testing.T) {
	for _, m := range sampleMsgs() {
		if EncodedSize(m) <= 0 {
			t.Errorf("EncodedSize(%T) must be positive", m)
		}
	}
}

func TestEncodedSizeGrowsWithHistory(t *testing.T) {
	small := types.NewHistory()
	big := types.NewHistory()
	for ts := types.TS(1); ts <= 50; ts++ {
		w := types.WTuple{TSVal: types.TSVal{TS: ts, Val: types.Value("12345678")}, TSR: types.NewTSRMatrix()}
		big[ts] = types.HistEntry{PW: w.TSVal, W: &w}
	}
	a := EncodedSize(ReadAckHist{History: small})
	b := EncodedSize(ReadAckHist{History: big})
	if b <= a {
		t.Errorf("50-entry history (%dB) must encode larger than initial (%dB)", b, a)
	}
}

func TestCloneIsDeepForAllTypes(t *testing.T) {
	for _, m := range sampleMsgs() {
		c := Clone(m)
		if reflect.TypeOf(c) != reflect.TypeOf(m) {
			t.Fatalf("Clone changed type: %T → %T", m, c)
		}
	}
	// Spot-check aliasing on the mutable payloads.
	orig := sampleMsgs()[0].(PWReq)
	c := Clone(orig).(PWReq)
	c.W.TSR[0][0] = 99
	c.PW.Val[0] = 'z'
	if orig.W.TSR[0][0] == 99 || orig.PW.Val[0] == 'z' {
		t.Error("Clone(PWReq) must deep-copy")
	}
	rrOrig := sampleMsgs()[4].(ReadReq)
	rc := Clone(rrOrig).(ReadReq)
	rc.Repair.TSVal.Val[0] = 'z'
	if rrOrig.Repair.TSVal.Val[0] == 'z' {
		t.Error("Clone(ReadReq) must deep-copy the repair hint")
	}
	hOrig := sampleMsgs()[6].(ReadAckHist)
	hc := Clone(hOrig).(ReadAckHist)
	hc.History[7].W.TSVal.Val[0] = 'z'
	if hOrig.History[7].W.TSVal.Val[0] == 'z' {
		t.Error("Clone(ReadAckHist) must deep-copy the history")
	}
}

func TestQuickBaselineRoundTrip(t *testing.T) {
	f := func(ts int64, val []byte, sig []byte, id uint8) bool {
		m := BaselineReadAck{
			ObjectID: types.ObjectID(id % 16),
			TS:       types.TS(ts),
			Val:      append(types.Value(nil), val...),
			Sig:      append([]byte(nil), sig...),
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		got, ok := back.(BaselineReadAck)
		if !ok || got.ObjectID != m.ObjectID || got.TS != m.TS {
			return false
		}
		return got.Val.Equal(m.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReadReqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		m := ReadReq{
			Round:   Round(1 + rng.Intn(2)),
			Reader:  types.ReaderID(rng.Intn(8)),
			TSR:     types.ReaderTS(rng.Int63n(1 << 40)),
			CacheTS: types.TS(rng.Int63n(1 << 40)),
		}
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.(ReadReq) != m {
			t.Fatalf("round-trip mismatch: %+v vs %+v", back, m)
		}
	}
}
