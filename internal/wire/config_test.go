package wire

import (
	"reflect"
	"testing"

	"repro/internal/types"
)

func configFixtures() []Msg {
	return []Msg{
		ConfigEpoch{Epoch: 3, Msg: RegOp{Reg: "users/42", Msg: WReq{TS: 7, PW: types.TSVal{TS: 7, Val: types.Value("v")}, W: types.InitWTuple()}}},
		ConfigEpoch{Epoch: 0, Msg: Epoch{Inc: 2, Msg: RegOp{Reg: "r", Msg: WAck{ObjectID: 1, TS: 7}}}},
		ConfigUpdate{Shard: 1, Epoch: 4, Members: []int64{0, 9, 2, 3}, Sig: []byte{0xde, 0xad, 0xbe, 0xef}},
		ConfigUpdate{}, // zero value round-trips too
	}
}

// TestConfigFramesRoundTripBothCodecs: the membership frames survive
// gob and the compact codec byte-for-byte.
func TestConfigFramesRoundTripBothCodecs(t *testing.T) {
	for _, m := range configFixtures() {
		gobBytes, err := Encode(m)
		if err != nil {
			t.Fatalf("gob encode %T: %v", m, err)
		}
		back, err := Decode(gobBytes)
		if err != nil {
			t.Fatalf("gob decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(back)) {
			t.Fatalf("gob round trip of %#v yielded %#v", m, back)
		}

		compact, err := EncodeCompact(m)
		if err != nil {
			t.Fatalf("compact encode %T: %v", m, err)
		}
		back, err = DecodeCompact(compact)
		if err != nil {
			t.Fatalf("compact decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(back)) {
			t.Fatalf("compact round trip of %#v yielded %#v", m, back)
		}
	}
}

// normalize maps nil and empty slices onto one form: the codecs may
// decode an absent list as empty rather than nil, which is semantically
// identical for these frames.
func normalize(m Msg) Msg {
	cu, ok := m.(ConfigUpdate)
	if !ok {
		return m
	}
	if len(cu.Members) == 0 {
		cu.Members = nil
	}
	if len(cu.Sig) == 0 {
		cu.Sig = nil
	}
	return cu
}

// TestConfigFrameClone: clones share no mutable backing arrays.
func TestConfigFrameClone(t *testing.T) {
	cu := ConfigUpdate{Shard: 0, Epoch: 1, Members: []int64{0, 5, 2}, Sig: []byte{1, 2, 3}}
	cloned := Clone(cu).(ConfigUpdate)
	cloned.Members[0] = 99
	cloned.Sig[0] = 99
	if cu.Members[0] == 99 || cu.Sig[0] == 99 {
		t.Fatal("Clone aliased the update's slices")
	}

	ce := ConfigEpoch{Epoch: 2, Msg: RegOp{Reg: "k", Msg: BaselineWriteReq{TS: 1, Val: types.Value("x")}}}
	cloned2 := Clone(ce).(ConfigEpoch)
	cloned2.Msg.(RegOp).Msg.(BaselineWriteReq).Val[0] = 'y'
	if ce.Msg.(RegOp).Msg.(BaselineWriteReq).Val[0] != 'x' {
		t.Fatal("Clone aliased the wrapped value")
	}
}

// TestConfigEpochFullReplyNesting: the deepest legitimate frame — a
// Batch of config-stamped, incarnation-stamped register acks — decodes
// within the nesting cap on the compact codec.
func TestConfigEpochFullReplyNesting(t *testing.T) {
	reply := Batch{Ops: []Msg{
		ConfigEpoch{Epoch: 1, Msg: Epoch{Inc: 2, Msg: RegOp{Reg: "a", Msg: WAck{ObjectID: 0, TS: 3}}}},
		ConfigEpoch{Epoch: 1, Msg: Epoch{Inc: 2, Msg: RegOp{Reg: "b", Msg: WAck{ObjectID: 0, TS: 4}}}},
	}}
	data, err := EncodeCompact(reply)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompact(data)
	if err != nil {
		t.Fatalf("full reply nesting rejected: %v", err)
	}
	if !reflect.DeepEqual(reply, back) {
		t.Fatalf("nested reply mutated in flight:\n%#v\n%#v", reply, back)
	}
}

// TestConfigUpdateDecodeRejectsBogusLength: a member-list count larger
// than the remaining frame must be rejected before allocation.
func TestConfigUpdateDecodeRejectsBogusLength(t *testing.T) {
	data, err := EncodeCompact(ConfigUpdate{Epoch: 1, Members: []int64{1}, Sig: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate: the declared lengths now exceed the frame.
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeCompact(data[:cut]); err == nil {
			t.Fatalf("truncated frame (len %d of %d) decoded", cut, len(data))
		}
	}
}
