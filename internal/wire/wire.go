// Package wire defines the messages exchanged between clients and base
// objects in the protocols of Guerraoui & Vukolić (PODC 2006): the
// writer's PW and W round messages (Fig. 2), the reader's READ1/READ2
// round messages (Figs. 4 and 6), and the corresponding acknowledgements
// from objects (Figs. 3 and 5).
//
// The same message set serves the safe protocol, the regular protocol
// (history-carrying acks), the baselines, and the server-centric
// extension. Messages are plain data; every payload type is registered
// with encoding/gob so the TCP transport and the size accounting in
// EncodedSize work on all of them.
//
// Adding a message type means updating four places, and the
// wireexhaustive analyzer (internal/analysis/wireexhaustive, run by
// `make lint`) flags any that are missed: declare the type with an
// isMsg method, add a tag<Type> constant and codec arms in binary.go,
// add the type to every type switch over Msg, and register it in the
// gob.Register block below.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/types"
)

// Msg is any protocol message payload.
type Msg interface{ isMsg() }

// Round identifies a read round: 1 for READ1, 2 for READ2.
type Round int

// Read rounds.
const (
	Round1 Round = 1
	Round2 Round = 2
)

// PWReq is the writer's first-round message PW⟨ts, pw, w⟩: it writes the
// new pw pair (and re-writes the previous complete tuple w) and reads
// back the object's reader-timestamp vector.
type PWReq struct {
	TS types.TS
	PW types.TSVal
	W  types.WTuple
}

// PWAck is the object's PW_ACK⟨ts, tsr⟩ reply carrying its per-reader
// timestamp vector, which the writer folds into currenttsrarray.
type PWAck struct {
	ObjectID types.ObjectID
	TS       types.TS
	TSR      types.TSRVector
}

// WReq is the writer's second-round message W⟨ts, pw, w⟩ installing the
// complete tuple w = ⟨pw, currenttsrarray⟩.
type WReq struct {
	TS types.TS
	PW types.TSVal
	W  types.WTuple
}

// WAck is the object's WRITE_ACK⟨ts⟩ reply.
type WAck struct {
	ObjectID types.ObjectID
	TS       types.TS
}

// ReadReq is the reader's READk⟨tsr′⟩ message. Readers store their fresh
// timestamp into the object's tsr[j] field in both rounds. CacheTS
// implements the §5.1 optimization for the regular protocol: objects
// ship only the history suffix at or above CacheTS. Safe-protocol
// readers leave CacheTS at zero.
//
// Repair is the read-repair hint piggybacked on round 2 of a slow-path
// read: when round 1 revealed divergent replicas, the reader attaches
// the dominant complete tuple so lagging members converge without
// waiting for the writer's next op. Objects apply it exactly like a
// WReq install (timestamp-dominant, so a stale hint is a no-op), and
// only tuples vouched for by b+1 byte-identical round-1 replies are
// ever attached — at least one honest object stored that exact tuple,
// so a Byzantine object cannot launder a forged tuple through an
// honest reader. nil (the common case) costs one presence byte on the
// wire.
type ReadReq struct {
	Round   Round
	Reader  types.ReaderID
	TSR     types.ReaderTS
	CacheTS types.TS
	Repair  *types.WTuple
}

// ReadAck is the safe object's READk_ACK⟨tsr[j], pw, w⟩ reply (Fig. 3).
type ReadAck struct {
	ObjectID types.ObjectID
	Round    Round
	TSR      types.ReaderTS
	PW       types.TSVal
	W        types.WTuple
}

// ReadAckHist is the regular object's READk_ACK⟨tsr[j], history⟩ reply
// (Fig. 5), carrying the write history (possibly a suffix under §5.1).
type ReadAckHist struct {
	ObjectID types.ObjectID
	Round    Round
	TSR      types.ReaderTS
	History  types.History
}

// Baseline messages -------------------------------------------------------

// BaselineWriteReq is the single-round write of the ABD, authenticated
// and fast-read baselines: store ⟨ts, v⟩ if newer. Sig carries the
// writer's signature for the authenticated baseline and is empty
// otherwise.
type BaselineWriteReq struct {
	TS  types.TS
	Val types.Value
	Sig []byte
}

// BaselineWriteAck acknowledges a BaselineWriteReq.
type BaselineWriteAck struct {
	ObjectID types.ObjectID
	TS       types.TS
}

// BaselineReadReq asks an object for its current pair. Attempt
// distinguishes successive rounds of multi-round baseline reads.
type BaselineReadReq struct {
	Attempt int
	Reader  types.ReaderID
}

// BaselineReadAck returns the object's current pair (with signature for
// the authenticated baseline).
type BaselineReadAck struct {
	ObjectID types.ObjectID
	Attempt  int
	TS       types.TS
	Val      types.Value
	Sig      []byte
}

// PairsReadAck returns both fields of a two-field (pw/w) baseline object
// to a non-mutating reader: the b+1-round baseline of [1].
type PairsReadAck struct {
	ObjectID types.ObjectID
	Attempt  int
	PW       types.TSVal
	W        types.TSVal
}

// Multi-register and batching frames --------------------------------------

// RegOp addresses a protocol message to one named register of a
// multi-register base object. The sharded store (internal/store) keeps
// one independent register automaton per key on every base object and
// uses RegOp as the demultiplexing envelope; the wrapped Msg is any of
// the single-register messages above, unchanged.
//
// Op is the distributed trace context: the client mux stamps requests
// with the op's trace ID (obs.Tracer.NewOp) and servers echo it on the
// reply, so every hop — object serve, batch coalesce, fault verdict —
// can attribute its events to the client operation that caused them.
// Zero means untraced (telemetry off, or traffic that predates the op
// bind); every layer treats 0 as "no trace context" and emits nothing.
type RegOp struct {
	Reg string
	Op  uint64
	Msg Msg
}

// OpIDs appends the trace operation IDs of every traced RegOp inside
// msg to acc, unwrapping the envelopes a request can travel in (Busy
// echoes, Batch frames, configuration and incarnation envelopes).
// Untraced ops (Op == 0) are skipped. The fault and transport layers
// use it to attribute a drop/delay/busy verdict to the victim ops.
// Implemented as an assertion chain rather than a type switch: it is a
// deliberately partial view over the message set (leaf messages carry
// no trace context), which a type switch over Msg would misrepresent
// to the wireexhaustive analyzer as a forgotten case list.
func OpIDs(msg Msg, acc []uint64) []uint64 {
	if v, ok := msg.(RegOp); ok {
		if v.Op != 0 {
			acc = append(acc, v.Op)
		}
		return acc
	}
	if v, ok := msg.(Batch); ok {
		for _, op := range v.Ops {
			acc = OpIDs(op, acc)
		}
		return acc
	}
	if v, ok := msg.(ConfigEpoch); ok {
		return OpIDs(v.Msg, acc)
	}
	if v, ok := msg.(Epoch); ok {
		return OpIDs(v.Msg, acc)
	}
	if v, ok := msg.(Busy); ok {
		return OpIDs(v.Msg, acc)
	}
	return acc
}

// Batch is the multi-op frame of the batched transport hot path: a
// length-prefixed sequence of independent protocol messages (typically
// RegOps for distinct registers) coalesced into a single network frame
// because they were concurrently in flight between the same client and
// the same base object. Objects process the ops in order and reply with
// a Batch of the produced acknowledgements.
type Batch struct {
	Ops []Msg
}

// Recovery (amnesia catch-up) messages ------------------------------------

// Epoch is the incarnation envelope of a recovery-enabled base object:
// every protocol reply is wrapped with the object's current incarnation
// number, which an amnesia restart bumps. Clients track the highest
// incarnation seen per object and reject replies from earlier
// incarnations — a zombie reply that left the object before its crash
// reflects state the object no longer holds and must not count toward a
// quorum.
type Epoch struct {
	Inc int64
	Msg Msg
}

// StateReq is the catch-up query a recovering base object broadcasts to
// its shard siblings (acting as a client — base objects never talk to
// each other in the data-centric model, so the recovery manager speaks
// through its own transport endpoint). Seq correlates responses with
// the catch-up attempt that solicited them; duplicated or reordered
// responses from an earlier attempt are discarded by Seq.
type StateReq struct {
	Seq       int64
	Requester types.ObjectID
}

// StateResp is a sibling's reply: its incarnation and a snapshot of
// every register automaton it hosts. A fenced (itself recovering)
// object does not answer; Byzantine objects in this repository stay
// silent too (they forge protocol replies, not recovery donations —
// hardening catch-up against Byzantine state donors is an open item).
type StateResp struct {
	ObjectID    types.ObjectID
	Seq         int64
	Incarnation int64
	Regs        []RegState
}

// RegState is one register's transferable volatile state: exactly the
// regular object's Snapshot/Restore surface (timestamp, write history,
// per-reader timestamp vector).
type RegState struct {
	Reg     string
	TS      types.TS
	History types.History
	TSR     types.TSRVector
}

// Clone deep-copies the register state.
func (rs RegState) Clone() RegState {
	return RegState{Reg: rs.Reg, TS: rs.TS, History: rs.History.Clone(), TSR: rs.TSR.Clone()}
}

// Flow control (overload pushback) messages --------------------------------

// Busy is the pushback frame of the flow-control layer: an overloaded
// hop — a base object whose bounded request queue is full, or the
// client-side batch layer at its pending budget — answers a request
// with Busy{request} instead of queueing it without bound. The echoed
// request tells the client exactly which op was rejected (it may be a
// whole Batch). The client mux treats the sender as a transiently slow
// object: the protocols need only S−t replies per round, so the mux
// sheds the slow member from subsequent broadcasts and re-drives the
// rejected op with a delayed hedge instead of blocking. Busy is
// advisory — losing one costs nothing, because the straggler hedge is
// timer-driven.
type Busy struct {
	Msg Msg
}

// Membership (reconfiguration) messages -----------------------------------

// ConfigEpoch wraps a request or reply with the sender's configuration
// epoch — the monotonically increasing version of the shard's member
// list (which logical object slot lives at which transport address).
// It composes with the incarnation envelope: a recovery- and
// membership-enabled reply travels as ConfigEpoch{Epoch{RegOp{...}}}.
// Base objects reject requests from stale configurations with a
// ConfigUpdate redirect instead of serving them, so a lagging client
// self-heals in one extra round-trip; clients use the member list (not
// the stamped epoch) to decide which replies may count toward quorums —
// a reply from an address evicted by reconfiguration never does.
type ConfigEpoch struct {
	Epoch int64
	Msg   Msg
}

// ConfigUpdate is the redirect frame of the reconfiguration protocol: a
// member of configuration Epoch answers a request stamped with an older
// epoch with the signed-off member list of the current one. Members[i]
// is the physical transport index (transport.Object(Members[i])) of
// logical slot i; Sig authenticates the (Shard, Epoch, Members) triple
// under the deployment's membership key, so a Byzantine object cannot
// hijack clients onto a forged configuration — at worst it can replay an
// old signed update, which the client's monotonic epoch check discards.
type ConfigUpdate struct {
	Shard   int64
	Epoch   int64
	Members []int64
	Sig     []byte
}

// Clone deep-copies the update.
func (cu ConfigUpdate) Clone() ConfigUpdate {
	return ConfigUpdate{
		Shard:   cu.Shard,
		Epoch:   cu.Epoch,
		Members: append([]int64(nil), cu.Members...),
		Sig:     append([]byte(nil), cu.Sig...),
	}
}

// Server-centric messages -------------------------------------------------

// SubscribeReq is a reader's single push-model message (§6): the reader
// announces a read and servers push state until it can decide.
type SubscribeReq struct {
	Reader types.ReaderID
	Seq    int64
}

// PushState is an unsolicited server→client or server→server message in
// the server-centric model carrying the server's current pair.
type PushState struct {
	ObjectID types.ObjectID
	Seq      int64
	TS       types.TS
	Val      types.Value
	Echo     bool // true when relayed between servers
}

func (PWReq) isMsg()            {}
func (PWAck) isMsg()            {}
func (WReq) isMsg()             {}
func (WAck) isMsg()             {}
func (ReadReq) isMsg()          {}
func (ReadAck) isMsg()          {}
func (ReadAckHist) isMsg()      {}
func (BaselineWriteReq) isMsg() {}
func (BaselineWriteAck) isMsg() {}
func (BaselineReadReq) isMsg()  {}
func (BaselineReadAck) isMsg()  {}
func (PairsReadAck) isMsg()     {}
func (SubscribeReq) isMsg()     {}
func (PushState) isMsg()        {}
func (RegOp) isMsg()            {}
func (Batch) isMsg()            {}
func (Epoch) isMsg()            {}
func (StateReq) isMsg()         {}
func (StateResp) isMsg()        {}
func (ConfigEpoch) isMsg()      {}
func (ConfigUpdate) isMsg()     {}
func (Busy) isMsg()             {}

// registerAll makes every payload type known to gob, once, at package
// load. gob.Register is idempotent for identical concrete types, and the
// set of messages is closed, so doing this in an init-style var block is
// safe and keeps callers free of registration boilerplate.
var _ = func() struct{} {
	for _, m := range []interface{}{
		PWReq{}, PWAck{}, WReq{}, WAck{},
		ReadReq{}, ReadAck{}, ReadAckHist{},
		BaselineWriteReq{}, BaselineWriteAck{}, BaselineReadReq{}, BaselineReadAck{}, PairsReadAck{},
		SubscribeReq{}, PushState{},
		RegOp{}, Batch{},
		Epoch{}, StateReq{}, StateResp{},
		ConfigEpoch{}, ConfigUpdate{},
		Busy{},
	} {
		gob.Register(m)
	}
	return struct{}{}
}()

// Encode serializes a message with gob (used by the TCP transport and by
// size accounting).
func Encode(m Msg) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	wrapped := envelope{Payload: m}
	if err := enc.Encode(&wrapped); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", m, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a message previously produced by Encode.
func Decode(data []byte) (Msg, error) {
	var wrapped envelope
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&wrapped); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	m, ok := wrapped.Payload.(Msg)
	if !ok {
		return nil, fmt.Errorf("wire: decoded %T is not a protocol message", wrapped.Payload)
	}
	return m, nil
}

// envelope lets gob carry the interface value with its concrete type.
type envelope struct {
	Payload interface{}
}

// EncodedSize returns the gob-encoded size of a message in bytes; the E7
// and E8 experiments use it to account message volume. It returns 0 for
// messages that fail to encode (never the case for well-formed payloads).
func EncodedSize(m Msg) int {
	data, err := Encode(m)
	if err != nil {
		return 0
	}
	return len(data)
}

// Clone deep-copies a message so transports can hand independent copies
// to receivers. Byzantine handlers receive clones and cannot mutate
// honest state through shared slices or maps.
func Clone(m Msg) Msg {
	switch v := m.(type) {
	case PWReq:
		return PWReq{TS: v.TS, PW: v.PW.Clone(), W: v.W.Clone()}
	case PWAck:
		return PWAck{ObjectID: v.ObjectID, TS: v.TS, TSR: v.TSR.Clone()}
	case WReq:
		return WReq{TS: v.TS, PW: v.PW.Clone(), W: v.W.Clone()}
	case WAck:
		return v
	case ReadReq:
		if v.Repair != nil {
			rep := v.Repair.Clone()
			v.Repair = &rep
		}
		return v
	case ReadAck:
		return ReadAck{ObjectID: v.ObjectID, Round: v.Round, TSR: v.TSR, PW: v.PW.Clone(), W: v.W.Clone()}
	case ReadAckHist:
		return ReadAckHist{ObjectID: v.ObjectID, Round: v.Round, TSR: v.TSR, History: v.History.Clone()}
	case BaselineWriteReq:
		return BaselineWriteReq{TS: v.TS, Val: v.Val.Clone(), Sig: append([]byte(nil), v.Sig...)}
	case BaselineWriteAck:
		return v
	case BaselineReadReq:
		return v
	case BaselineReadAck:
		return BaselineReadAck{ObjectID: v.ObjectID, Attempt: v.Attempt, TS: v.TS, Val: v.Val.Clone(), Sig: append([]byte(nil), v.Sig...)}
	case PairsReadAck:
		return PairsReadAck{ObjectID: v.ObjectID, Attempt: v.Attempt, PW: v.PW.Clone(), W: v.W.Clone()}
	case SubscribeReq:
		return v
	case PushState:
		return PushState{ObjectID: v.ObjectID, Seq: v.Seq, TS: v.TS, Val: v.Val.Clone(), Echo: v.Echo}
	case RegOp:
		return RegOp{Reg: v.Reg, Op: v.Op, Msg: Clone(v.Msg)}
	case Batch:
		ops := make([]Msg, len(v.Ops))
		for i, op := range v.Ops {
			ops[i] = Clone(op)
		}
		return Batch{Ops: ops}
	case Epoch:
		return Epoch{Inc: v.Inc, Msg: Clone(v.Msg)}
	case StateReq:
		return v
	case StateResp:
		regs := make([]RegState, len(v.Regs))
		for i, rs := range v.Regs {
			regs[i] = rs.Clone()
		}
		return StateResp{ObjectID: v.ObjectID, Seq: v.Seq, Incarnation: v.Incarnation, Regs: regs}
	case ConfigEpoch:
		return ConfigEpoch{Epoch: v.Epoch, Msg: Clone(v.Msg)}
	case ConfigUpdate:
		return v.Clone()
	case Busy:
		return Busy{Msg: Clone(v.Msg)}
	default:
		// Unknown payloads only arise from test doubles; pass through.
		return m
	}
}
