package wire

import (
	"math/rand"

	"testing"
	"testing/quick"

	"repro/internal/types"
)

// msgEqual deep-compares two messages using the domain equality of the
// payload types (gob/compact round-trips may turn empty maps into nil).
func msgEqual(a, b Msg) bool {
	switch x := a.(type) {
	case PWReq:
		y, ok := b.(PWReq)
		return ok && x.TS == y.TS && x.PW.Equal(y.PW) && x.W.Equal(y.W)
	case PWAck:
		y, ok := b.(PWAck)
		return ok && x.ObjectID == y.ObjectID && x.TS == y.TS && x.TSR.Equal(y.TSR)
	case WReq:
		y, ok := b.(WReq)
		return ok && x.TS == y.TS && x.PW.Equal(y.PW) && x.W.Equal(y.W)
	case WAck:
		y, ok := b.(WAck)
		return ok && x == y
	case ReadReq:
		y, ok := b.(ReadReq)
		if !ok || x.Round != y.Round || x.Reader != y.Reader || x.TSR != y.TSR || x.CacheTS != y.CacheTS {
			return false
		}
		if (x.Repair == nil) != (y.Repair == nil) {
			return false
		}
		return x.Repair == nil || x.Repair.Equal(*y.Repair)
	case ReadAck:
		y, ok := b.(ReadAck)
		return ok && x.ObjectID == y.ObjectID && x.Round == y.Round && x.TSR == y.TSR &&
			x.PW.Equal(y.PW) && x.W.Equal(y.W)
	case ReadAckHist:
		y, ok := b.(ReadAckHist)
		if !ok || x.ObjectID != y.ObjectID || x.Round != y.Round || x.TSR != y.TSR {
			return false
		}
		if len(x.History) != len(y.History) {
			return false
		}
		for ts, e := range x.History {
			if !e.Equal(y.History[ts]) {
				return false
			}
		}
		return true
	case BaselineWriteReq:
		y, ok := b.(BaselineWriteReq)
		return ok && x.TS == y.TS && x.Val.Equal(y.Val) && string(x.Sig) == string(y.Sig)
	case BaselineWriteAck:
		y, ok := b.(BaselineWriteAck)
		return ok && x == y
	case BaselineReadReq:
		y, ok := b.(BaselineReadReq)
		return ok && x == y
	case BaselineReadAck:
		y, ok := b.(BaselineReadAck)
		return ok && x.ObjectID == y.ObjectID && x.Attempt == y.Attempt && x.TS == y.TS &&
			x.Val.Equal(y.Val) && string(x.Sig) == string(y.Sig)
	case PairsReadAck:
		y, ok := b.(PairsReadAck)
		return ok && x.ObjectID == y.ObjectID && x.Attempt == y.Attempt &&
			x.PW.Equal(y.PW) && x.W.Equal(y.W)
	case SubscribeReq:
		y, ok := b.(SubscribeReq)
		return ok && x == y
	case PushState:
		y, ok := b.(PushState)
		return ok && x.ObjectID == y.ObjectID && x.Seq == y.Seq && x.TS == y.TS &&
			x.Val.Equal(y.Val) && x.Echo == y.Echo
	case RegOp:
		y, ok := b.(RegOp)
		return ok && x.Reg == y.Reg && x.Op == y.Op && msgEqual(x.Msg, y.Msg)
	case Batch:
		y, ok := b.(Batch)
		if !ok || len(x.Ops) != len(y.Ops) {
			return false
		}
		for i := range x.Ops {
			if !msgEqual(x.Ops[i], y.Ops[i]) {
				return false
			}
		}
		return true
	case Epoch:
		y, ok := b.(Epoch)
		return ok && x.Inc == y.Inc && msgEqual(x.Msg, y.Msg)
	case Busy:
		y, ok := b.(Busy)
		return ok && msgEqual(x.Msg, y.Msg)
	case StateReq:
		y, ok := b.(StateReq)
		return ok && x == y
	case StateResp:
		y, ok := b.(StateResp)
		if !ok || x.ObjectID != y.ObjectID || x.Seq != y.Seq || x.Incarnation != y.Incarnation ||
			len(x.Regs) != len(y.Regs) {
			return false
		}
		for i := range x.Regs {
			if !regStateEqual(x.Regs[i], y.Regs[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// regStateEqual deep-compares two register snapshots.
func regStateEqual(a, b RegState) bool {
	if a.Reg != b.Reg || a.TS != b.TS || !a.TSR.Equal(b.TSR) || len(a.History) != len(b.History) {
		return false
	}
	for ts, e := range a.History {
		if !e.Equal(b.History[ts]) {
			return false
		}
	}
	return true
}

func TestCompactRoundTripAllTypes(t *testing.T) {
	for _, m := range sampleMsgs() {
		data, err := EncodeCompact(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		back, err := DecodeCompact(data)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !msgEqual(m, back) {
			t.Fatalf("%T round-trip mismatch:\n  in:  %+v\n  out: %+v", m, m, back)
		}
	}
}

func TestCompactRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},       // unknown tag
		{tagPWAck}, // truncated
		{tagReadAckHist, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // absurd length
		{tagBatch, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // batch count 2^63: must error, not panic
		{tagBatch, 0x04, 0x01, byte(tagWAck)},                                  // count beyond frame
	}
	for i, data := range cases {
		if _, err := DecodeCompact(data); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func TestCompactRejectsDeepNesting(t *testing.T) {
	// Legitimate frames nest at most Batch→RegOp→message; a Byzantine
	// peer hand-crafting deeper self-nesting must hit the cap instead
	// of recursing toward stack exhaustion.
	m := Msg(WAck{ObjectID: 1, TS: 2})
	for i := 0; i < 3; i++ {
		m = RegOp{Reg: "r", Msg: m}
	}
	data, err := EncodeCompact(Batch{Ops: []Msg{m}}) // depth 4: allowed
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCompact(data); err != nil {
		t.Fatalf("nesting at the cap must decode: %v", err)
	}
	deep := Msg(WAck{ObjectID: 1, TS: 2})
	for i := 0; i < 64; i++ {
		deep = RegOp{Reg: "r", Msg: deep}
	}
	data, err = EncodeCompact(deep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCompact(data); err == nil {
		t.Fatal("64-deep nesting must be rejected")
	}
}

func TestCompactRejectsTrailingBytes(t *testing.T) {
	data, err := EncodeCompact(WAck{ObjectID: 1, TS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCompact(append(data, 0xAB)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestCompactSmallerThanGob(t *testing.T) {
	for _, m := range sampleMsgs() {
		gobSize := EncodedSize(m)
		compact := CompactSize(m)
		if compact >= gobSize {
			t.Errorf("%T: compact %dB not smaller than gob %dB", m, compact, gobSize)
		}
	}
}

func TestCompactBottomVsEmptyValue(t *testing.T) {
	// ⊥ (nil) and an empty value are semantically distinct and must
	// survive the round trip distinctly.
	for _, val := range []types.Value{nil, {}} {
		m := BaselineReadAck{ObjectID: 1, TS: 2, Val: val, Sig: []byte{}}
		data, err := EncodeCompact(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeCompact(data)
		if err != nil {
			t.Fatal(err)
		}
		got := back.(BaselineReadAck).Val
		if got.IsBottom() != val.IsBottom() {
			t.Errorf("⊥-ness changed: in=%v out=%v", val == nil, got == nil)
		}
	}
}

// randomHistMsg builds a random history-carrying ack.
func randomHistMsg(rng *rand.Rand) ReadAckHist {
	h := types.NewHistory()
	for i := 0; i < rng.Intn(12); i++ {
		ts := types.TS(rng.Intn(40))
		m := types.NewTSRMatrix()
		for k := 0; k < rng.Intn(4); k++ {
			vec := types.NewTSRVector(1 + rng.Intn(3))
			for x := range vec {
				vec[x] = types.ReaderTS(rng.Intn(6)) - 1
			}
			m[types.ObjectID(rng.Intn(9))] = vec
		}
		w := types.WTuple{TSVal: types.TSVal{TS: ts, Val: types.Value{byte(rng.Intn(256))}}, TSR: m}
		entry := types.HistEntry{PW: w.TSVal.Clone()}
		if rng.Intn(2) == 0 {
			entry.W = &w
		}
		h[ts] = entry
	}
	return ReadAckHist{
		ObjectID: types.ObjectID(rng.Intn(12)),
		Round:    Round(1 + rng.Intn(2)),
		TSR:      types.ReaderTS(rng.Int63n(1 << 30)),
		History:  h,
	}
}

func TestQuickCompactHistoryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomHistMsg(rng)
		data, err := EncodeCompact(m)
		if err != nil {
			return false
		}
		back, err := DecodeCompact(data)
		if err != nil {
			return false
		}
		return msgEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompactNeverPanicsOnFuzz(t *testing.T) {
	f := func(data []byte) bool {
		m, err := DecodeCompact(data)
		if err == nil && m == nil {
			return false
		}
		if err == nil {
			// Whatever decoded must re-encode.
			if _, err := EncodeCompact(m); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCodecComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	small := ReadReq{Round: Round2, Reader: 1, TSR: 12345, CacheTS: 678}
	big := randomHistMsg(rng)
	for _, tc := range []struct {
		name string
		msg  Msg
	}{{"small/ReadReq", small}, {"large/ReadAckHist", big}} {
		b.Run("gob/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := Encode(tc.msg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(EncodedSize(tc.msg)), "bytes/msg")
		})
		b.Run("compact/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := EncodeCompact(tc.msg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := DecodeCompact(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(CompactSize(tc.msg)), "bytes/msg")
		})
	}
}
