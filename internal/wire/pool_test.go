package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
)

// benchBatch builds a realistic coalesced frame: n writer ops bound for
// one object, the shape the batch layer ships under load.
func benchBatch(n int) Batch {
	ops := make([]Msg, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, RegOp{
			Reg: fmt.Sprintf("r%d", i%4),
			Msg: WReq{
				TS: types.TS(i),
				PW: types.TSVal{TS: types.TS(i), Val: []byte("payload-0123456789")},
				W:  types.WTuple{TSVal: types.TSVal{TS: types.TS(i - 1), Val: []byte("prev")}, TSR: types.NewTSRMatrix()},
			},
		})
	}
	return Batch{Ops: ops}
}

// TestPooledEncodeDeterministic pins that pooled scratch buffers never
// leak bytes between messages: an encode that follows a much larger
// encode on the same pooled buffer must produce byte-identical output
// to a cold encode.
func TestPooledEncodeDeterministic(t *testing.T) {
	small := Msg(WAck{ObjectID: 3, TS: 7})
	cold, err := EncodeCompact(small)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := EncodeCompact(benchBatch(32)); err != nil {
			t.Fatal(err)
		}
		got, err := EncodeCompact(small)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, got) {
			t.Fatalf("iteration %d: pooled encode diverged:\n  cold: %x\n  got:  %x", i, cold, got)
		}
	}
}

// TestPooledRoundTripConcurrent hammers the pooled encode/decode path
// from many goroutines (run under -race in CI): every round trip must
// reproduce its own message even while the pool recycles buffers
// between goroutines.
func TestPooledRoundTripConcurrent(t *testing.T) {
	msgs := sampleMsgs()
	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := msgs[(seed+i)%len(msgs)]
				data, err := EncodeCompact(m)
				if err != nil {
					errs <- fmt.Errorf("encode %T: %w", m, err)
					return
				}
				back, err := DecodeCompact(data)
				if err != nil {
					errs <- fmt.Errorf("decode %T: %w", m, err)
					return
				}
				if !msgEqual(m, back) {
					errs <- fmt.Errorf("%T round-trip mismatch under concurrency", m)
					return
				}
				if CompactSize(m) != len(data) {
					errs <- fmt.Errorf("%T: CompactSize %d != encoded %d", m, CompactSize(m), len(data))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAppendCompactReusableBuffer pins the zero-alloc contract callers
// rely on: appending into a reused buffer yields the same bytes as a
// fresh encode, and content already in the buffer is preserved.
func TestAppendCompactReusableBuffer(t *testing.T) {
	m := benchBatch(8)
	want, err := EncodeCompact(m)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 16) // deliberately small: must grow correctly
	for i := 0; i < 10; i++ {
		buf = buf[:0]
		buf, err = AppendCompact(buf, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, buf) {
			t.Fatalf("iteration %d: AppendCompact diverged from EncodeCompact", i)
		}
	}
	prefixed := append([]byte("header"), 0)
	out, err := AppendCompact(prefixed, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefixed)], prefixed) {
		t.Fatal("AppendCompact clobbered existing buffer content")
	}
	if !bytes.Equal(out[len(prefixed):], want) {
		t.Fatal("AppendCompact after prefix diverged")
	}
}

// TestDecodeDoesNotRetainInput pins that decoded messages own their
// data: mutating the input frame after DecodeCompact must not change
// the decoded message (frame buffers are pooled and reused).
func TestDecodeDoesNotRetainInput(t *testing.T) {
	m := RegOp{Reg: "acct", Msg: WReq{
		TS: 9,
		PW: types.TSVal{TS: 9, Val: []byte("live-payload")},
		W:  types.WTuple{TSVal: types.TSVal{TS: 8, Val: []byte("older")}, TSR: types.NewTSRMatrix()},
	}}
	data, err := EncodeCompact(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xFF
	}
	if !msgEqual(m, back) {
		t.Fatal("decoded message aliased the input frame")
	}
}

func BenchmarkCompactEncodeRegOp(b *testing.B) {
	m := RegOp{Reg: "r1", Msg: WReq{
		TS: 42,
		PW: types.TSVal{TS: 42, Val: []byte("payload-0123456789")},
		W:  types.WTuple{TSVal: types.TSVal{TS: 41, Val: []byte("prev")}, TSR: types.NewTSRMatrix()},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCompact(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompactDecodeRegOp(b *testing.B) {
	m := RegOp{Reg: "r1", Msg: WReq{
		TS: 42,
		PW: types.TSVal{TS: 42, Val: []byte("payload-0123456789")},
		W:  types.WTuple{TSVal: types.TSVal{TS: 41, Val: []byte("prev")}, TSR: types.NewTSRMatrix()},
	}}
	data, err := EncodeCompact(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCompact(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompactEncodeBatch64(b *testing.B) {
	m := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCompact(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompactDecodeBatch64(b *testing.B) {
	data, err := EncodeCompact(benchBatch(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCompact(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendCompactBatch64 is the transport's actual hot path: a
// reused per-connection buffer. Steady state should be zero allocs.
func BenchmarkAppendCompactBatch64(b *testing.B) {
	m := benchBatch(64)
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendCompact(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}
