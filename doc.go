// Package repro is a from-scratch Go reproduction of "How Fast Can a
// Very Robust Read Be?" (Guerraoui & Vukolić, PODC 2006): wait-free
// robust register emulations over Byzantine-prone base objects.
//
// The library implements the paper's optimally resilient (S = 2t+b+1)
// safe and regular SWMR storage with 2-round reads and writes
// (internal/core), the base objects (internal/object), an executable
// rendition of the Proposition 1 lower-bound proof
// (internal/lowerbound), the baselines the paper positions itself
// against (internal/baseline), the §6 server-centric model
// (internal/servercentric), and three interchangeable transports
// (internal/transport/...).
//
// Beyond the reproduction, the store package (backed by
// internal/store) scales the single register into a sharded
// multi-register keyspace — string keys consistent-hashed onto
// independent base-object clusters, one register automaton per key per
// object — and internal/transport/batch adds the batched hot path that
// coalesces concurrent in-flight ops to the same base object into one
// multi-op frame on both the in-memory and the TCP transport.
//
// See README.md for the map and how to run the examples and
// benchmarks. bench_test.go in this directory regenerates every
// experiment via `go test -bench`; BENCH_store.json records the store
// throughput trajectory.
package repro
