// Package repro is a from-scratch Go reproduction of "How Fast Can a
// Very Robust Read Be?" (Guerraoui & Vukolić, PODC 2006): wait-free
// robust register emulations over Byzantine-prone base objects.
//
// The library implements the paper's optimally resilient (S = 2t+b+1)
// safe and regular SWMR storage with 2-round reads and writes
// (internal/core), the base objects (internal/object), an executable
// rendition of the Proposition 1 lower-bound proof
// (internal/lowerbound), the baselines the paper positions itself
// against (internal/baseline), the §6 server-centric model
// (internal/servercentric), and three interchangeable transports
// (internal/transport/...). See README.md for the map, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for the reproduction
// results. bench_test.go in this directory regenerates every
// experiment via `go test -bench`.
package repro
