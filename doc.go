// Package repro is a from-scratch Go reproduction of "How Fast Can a
// Very Robust Read Be?" (Guerraoui & Vukolić, PODC 2006): wait-free
// robust register emulations over Byzantine-prone base objects.
//
// The library implements the paper's optimally resilient (S = 2t+b+1)
// safe and regular SWMR storage with 2-round reads and writes
// (internal/core), the base objects (internal/object), an executable
// rendition of the Proposition 1 lower-bound proof
// (internal/lowerbound), the baselines the paper positions itself
// against (internal/baseline), the §6 server-centric model
// (internal/servercentric), and three interchangeable transports
// (internal/transport/...).
//
// Beyond the reproduction, the store package (backed by
// internal/store) scales the single register into a sharded
// multi-register keyspace — string keys consistent-hashed onto
// independent base-object clusters, one register automaton per key per
// object — and internal/transport/batch adds the batched hot path that
// coalesces concurrent in-flight ops to the same base object into one
// multi-op frame on both the in-memory and the TCP transport.
//
// The robustness the paper proves is exercised for real by
// internal/transport/fault: a composable, seeded fault-injection layer
// that wraps either transport with per-link message drop, delay,
// jitter, duplication, reordering, link partitions, and base-object
// crash/restart cycles (on TCP, a crash severs sockets and a restart
// exercises the client's re-dial path). The budget arithmetic follows
// §2 of the paper: at most t faulty objects per shard, of which at most
// b ≤ t Byzantine — crash-faulty and Byzantine objects draw from the
// same t, so store.Options enforces Faults.Faulty + ByzPerShard ≤ T.
// harness.RunChaos soaks the keyspace under a seeded schedule and
// validates every register's history against internal/consistency;
// `make chaos` runs it under the race detector.
//
// The paper's crash model assumes stable storage — a restarted object
// returns with its state intact. internal/recovery drops that
// assumption: an amnesia restart (fault.CrashPlan.AmnesiaBias, or
// RestartObjectAmnesia) wipes the object's volatile registers and bumps
// its incarnation epoch; the object is fenced out of every quorum (it
// answers nothing, and its pre-crash replies are rejected by clients as
// stale via the wire.Epoch incarnation envelope) until a catch-up
// protocol has rebuilt its registers from t+b+1 shard siblings
// (wire.StateReq/StateResp, timestamp-dominant merge). That quorum
// always intersects the latest completed write's quorum in an honest
// object, so a recovered object rejoins at full freshness and stops
// counting against the t budget instead of silently eroding write
// quorums. `make chaos-recovery` soaks amnesia restarts mid-workload on
// both transports under the race detector. Deployments that admit
// lying state donors can enable recovery.Policy.CrossValidate: per-
// entry b+1 agreement replaces the blind timestamp-dominant merge.
//
// The paper also fixes the object set S forever, so a PERMANENTLY dead
// or Byzantine member eats the fault budget t for the lifetime of the
// deployment. internal/membership lifts that with a reconfiguration
// epoch: the shard's slot→address member list is versioned
// (wire.ConfigEpoch on every request and reply, composing with the
// incarnation epoch), and Store.Replace swaps a faulty member for a
// fresh object at a new transport address while reads and writes
// continue. The replacement is an amnesia recovery at a new address —
// served fenced, state-transferred from t+b+1 members of the OLD
// configuration (so completed writes dominate the installed state and
// the old and new quorums intersect across the flip) — after which the
// shard flips: members answer stale-epoch ops with an HMAC-signed
// wire.ConfigUpdate redirect, clients verify, adopt, and replay their
// in-flight ops in one extra round-trip, and the evicted endpoint is
// released (late fault-plan operations against it are recorded no-ops,
// fault.Stats.StaleTargets). `make chaos-membership` soaks a live
// replacement per shard mid-workload on both transports under the race
// detector.
//
// Finally, the paper's liveness argument assumes a responsive quorum
// but says nothing about workloads that outrun the hardware.
// internal/transport/flow bounds every queue in the stack: base-object
// request queues answer wire.Busy{request} beyond their budget (total,
// or one sender's per-link share), the batch layer refuses ops past
// its pending budget with a synthetic Busy (coalesce-or-pushback), the
// fault layer's delay queues shed at a seeded cap, and client reply
// mailboxes — where a shed acknowledgement could never be re-elicited
// — are bounded by that request admission and only instrumented.
// The client mux treats a pushed-back member as transiently slow —
// every round needs only S−t replies, and the proofs budget for t
// silent members whatever silenced them — so it sheds up to t slow
// members per round and re-drives the stragglers with backed-off
// hedges while the round's client is still waiting. Shedding removes
// requests, never acknowledgements, so regularity is untouched;
// hedging restores liveness; saturation costs bounded memory and
// produces an explicit signal (store.FlowStats) instead of silent
// collapse. `make chaos-saturation` soaks the store at 2× capacity
// under the race detector on both transports.
//
// Every layer above also emits evidence, and internal/obs unifies it:
// a hierarchical metrics registry (store.Options.Telemetry) and a
// bounded op-trace ring with distributed propagation. The wire.RegOp
// envelope carries an Op uint64 trace ID: the client mux stamps it on
// every outbound request (hedges and replays keep the ID), servers
// echo it in replies and emit member-attributed serve/batch/busy/fault
// events under the same ID, and Store.TraceOp returns one operation's
// whole distributed life, client and replica sides interleaved by the
// shared injected clock. The convention is zero-when-untraced: Op == 0
// means the envelope belongs to no traced operation — servers count it
// but record no events, the compact codec spends one uvarint byte on
// it, and a telemetry-off deployment pays nothing else. An anomaly
// flight recorder (obs.FlightRecorder, armed by harness.RunChaos)
// freezes registry and ring into a self-contained JSON dump on a
// consistency violation, p99 watermark breach, or an overheld recovery
// fence; cmd/storetop -flight renders the dump as per-op timelines
// with one lane per member. `make chaos-telemetry` soaks all of it
// under the race detector.
//
// The hot path itself is kept honest by construction: the compact
// codec encodes into pooled buffers (wire.AppendCompact for zero-copy
// callers), the TCP framer reuses pooled frame buffers on both sides
// of the socket, and the batch layer is adaptive — a destination stays
// in pass-through (zero added latency, no timers) until sends
// demonstrably contend, and reverts when coalescing stops amortizing.
// Every row of BENCH_store.json carries goodput, p50/p99 latency, and
// allocs/op, and cmd/benchgate is the CI perf-regression gate: it
// diffs a fresh benchharness run against the committed baseline
// row-by-row and fails the build when goodput drops, or tail latency
// or allocations grow, beyond the configured noise bands.
//
// The round count itself is the paper's own metric, and its
// lower-bound framing (Proposition 1: no safe storage with S ≤ 2t+b
// base objects, and two rounds are required only when reads contend
// with writes or faults manifest) leaves the common case open to a
// fast path. store.Options.FastRead takes it: a reader decides after
// round 1 alone when all S−t collected replies are byte-identical,
// timestamp-dominant (pw = w at the top, so no write-back is in
// flight), and conflict-free for this reader (no reported read
// timestamp above its own). The predicate is safe by the S = 2t+b+1
// intersection arithmetic: S−t identical replies contain at least
// t+b+1 − t = b+1 honest vouchers, and any S−t read quorum intersects
// any completed write's S−t install quorum in S−2t = b+1 objects — at
// least one honest and up-to-date — so a unanimous quorum proves no
// newer completed write exists and skipping round 2 cannot miss one.
// Any divergence, in-flight pre-write, or forged conflict matrix fails
// the predicate and the read falls back to the classic two rounds,
// where the round-2 frame piggybacks the dominant b+1-vouched
// candidate as a repair hint (wire.ReadReq.Repair) that heals lagging
// replicas, converging the degraded tail back onto the fast path.
// store.Options.PipelinedWrites halves the writer's awaited rounds the
// same way: op N's write-back is issued unawaited and certified by op
// N+1's pre-write acks (the pre-write frame carries op N's tuple, and
// objects install before acking), with reads flushing a same-key
// pending write-back first so regularity is preserved. The measured
// rounds/read and fast-read hit rate appear in every bench row and are
// gated by benchgate's rounds-per-read ceiling.
//
// See README.md for the map and how to run the examples and
// benchmarks. bench_test.go in this directory regenerates every
// experiment via `go test -bench`; BENCH_store.json records the store
// throughput trajectory, including degraded-mode (faulty network) and
// saturated (2× capacity under flow control, goodput + p99) rows.
package repro
