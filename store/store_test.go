// Black-box tests of the public store API: Open/Write/Read round-trips
// over the batched TCP hot path, under Byzantine base objects, and the
// context behaviour when every reader slot is occupied.
package store_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/store"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestOpenZeroValueRoundTrip(t *testing.T) {
	s, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := testCtx(t)
	if err := s.Write(ctx, "a", types.Value("1")); err != nil {
		t.Fatal(err)
	}
	tv, err := s.Read(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !tv.Val.Equal(types.Value("1")) {
		t.Fatalf("read back %v", tv)
	}
	// A never-written register reads as the initial ⟨0,⊥⟩.
	tv, err = s.Read(ctx, "never-written")
	if err != nil {
		t.Fatal(err)
	}
	if tv.TS != 0 || !tv.Val.IsBottom() {
		t.Fatalf("unwritten register returned %v, want ⟨0,⊥⟩", tv)
	}
}

func TestBatchedTCPRoundTrips(t *testing.T) {
	s, err := store.Open(store.Options{
		T: 1, B: 1,
		Shards:          2,
		ReadersPerShard: 4,
		TCP:             true,
		Batching:        &store.BatchOptions{FlushWindow: 100 * time.Microsecond, MaxBatch: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := testCtx(t)

	const keys = 24
	var wg sync.WaitGroup
	errs := make(chan error, keys)
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("tcp/%02d", i)
			for v := 0; v < 3; v++ {
				want := types.Value(fmt.Sprintf("%s=v%d", key, v))
				if err := s.Write(ctx, key, want); err != nil {
					errs <- fmt.Errorf("write %s: %w", key, err)
					return
				}
				tv, err := s.Read(ctx, key)
				if err != nil {
					errs <- fmt.Errorf("read %s: %w", key, err)
					return
				}
				if !tv.Val.Equal(want) {
					errs <- fmt.Errorf("%s: read %q after writing %q", key, tv.Val, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Writes != keys*3 || m.Reads != keys*3 {
		t.Fatalf("metrics miscounted: %+v", m)
	}
	if m.RoundsPerWrite() > 2 || m.RoundsPerRead() > 2 {
		t.Fatalf("rounds exceed the paper's 2-round bound: %+v", m)
	}
}

func TestByzantineObjectsDoNotCorruptReads(t *testing.T) {
	s, err := store.Open(store.Options{
		T: 1, B: 1,
		Shards:          2,
		ReadersPerShard: 2,
		ByzPerShard:     1,
		Batching:        &store.BatchOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := testCtx(t)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("byz/%02d", i)
		want := types.Value(key)
		if err := s.Write(ctx, key, want); err != nil {
			t.Fatal(err)
		}
		tv, err := s.Read(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !tv.Val.Equal(want) {
			t.Fatalf("%s: Byzantine object corrupted the read: got %q", key, tv.Val)
		}
	}
}

// TestReadContextWhileAllSlotsBusy occupies the single reader slot of a
// deployment with a read that cannot complete (a manual partition holds
// the shard below quorum), then verifies that further reads respect
// their contexts while queued for a slot — and that the stalled read
// completes once the partition heals.
func TestReadContextWhileAllSlotsBusy(t *testing.T) {
	s, err := store.Open(store.Options{
		T: 1, B: 0, // S = 3, quorum 2
		Shards:          1,
		ReadersPerShard: 1,
		Faults:          &store.FaultPlan{}, // no injected noise: manual control only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := testCtx(t)
	if err := s.Write(ctx, "k", types.Value("v")); err != nil {
		t.Fatal(err)
	}

	// Cut two of the three objects: one reachable object < quorum, so the
	// next read stalls while holding the only reader slot.
	fn := s.FaultNet(0)
	if fn == nil {
		t.Fatal("FaultNet must be available when Options.Faults is set")
	}
	fn.PartitionObject(transport.Object(1))
	fn.PartitionObject(transport.Object(2))

	stalled := make(chan error, 1)
	go func() {
		_, err := s.Read(ctx, "k")
		stalled <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the read claim the slot

	short, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := s.Read(short, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued read returned %v, want context.DeadlineExceeded", err)
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := s.Read(pre, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("read with cancelled context returned %v, want context.Canceled", err)
	}

	fn.HealObject(transport.Object(1))
	fn.HealObject(transport.Object(2))
	select {
	case err := <-stalled:
		if err != nil {
			t.Fatalf("stalled read failed after heal: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stalled read never completed after the partition healed")
	}
	if _, err := s.Read(ctx, "k"); err != nil {
		t.Fatalf("slot not returned after the stall: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := store.Open(store.Options{T: 1, B: 1, ByzPerShard: 2}); err == nil {
		t.Fatal("ByzPerShard > B must be rejected")
	}
	if _, err := store.Open(store.Options{T: 1, B: 1, ByzPerShard: 1, Faults: &store.FaultPlan{Faulty: 1}}); err == nil {
		t.Fatal("Faulty + ByzPerShard > T must be rejected: Byzantine failures count against t")
	}
	if _, err := store.Open(store.Options{Faults: &store.FaultPlan{Drop: 2}}); err == nil {
		t.Fatal("invalid fault plan must be rejected")
	}
	s, err := store.Open(store.Options{T: 2, B: 1, ByzPerShard: 1, Faults: &store.FaultPlan{Faulty: 1}})
	if err != nil {
		t.Fatalf("budget-respecting faulty+byz deployment rejected: %v", err)
	}
	s.Close()
}

// TestFaultyDeploymentStaysCorrect is the smallest chaos check at the
// public API: one crash-faulty object per shard dropping a third of its
// traffic plus global jitter/duplication, and every round-trip must
// still return the value just written.
func TestFaultyDeploymentStaysCorrect(t *testing.T) {
	s, err := store.Open(store.Options{
		T: 1, B: 0,
		Shards:          2,
		ReadersPerShard: 2,
		Batching:        &store.BatchOptions{},
		Faults: &store.FaultPlan{
			Seed:      7,
			Faulty:    1,
			Drop:      0.33,
			Jitter:    500 * time.Microsecond,
			Duplicate: 0.1,
			Reorder:   0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := testCtx(t)
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("chaos/%02d", i)
		want := types.Value(fmt.Sprintf("v%d", i))
		if err := s.Write(ctx, key, want); err != nil {
			t.Fatal(err)
		}
		tv, err := s.Read(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !tv.Val.Equal(want) {
			t.Fatalf("%s: got %q want %q", key, tv.Val, want)
		}
	}
	if s.FaultStats() == (store.FaultStats{}) {
		t.Fatal("fault layer injected nothing")
	}
}
