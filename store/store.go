// Package store is the public API of the sharded multi-register robust
// keyspace: string register IDs consistently hashed onto independent
// S = 2t+b+1 base-object clusters, each register an SWMR safe or regular
// register of Guerraoui & Vukolić (PODC 2006) with 2-round wait-free
// reads and writes under up to b Byzantine base objects per shard.
//
//	s, err := store.Open(store.Options{Shards: 4, Batching: &store.BatchOptions{}})
//	defer s.Close()
//	err = s.Write(ctx, "users/42", types.Value("alice"))
//	pair, err := s.Read(ctx, "users/42")
//
// The implementation lives in internal/store; this package re-exports
// the deployment surface. See examples/kvstore for a complete demo with
// Byzantine fault injection and consistency validation.
package store

import (
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/recovery"
	istore "repro/internal/store"
	"repro/internal/transport/batch"
	"repro/internal/transport/fault"
	"repro/internal/transport/flow"
)

// Store is a sharded multi-register robust keyspace.
type Store = istore.Store

// Options configures a deployment; see internal/store for field
// semantics. The zero value opens a single-shard in-memory store with
// t = b = 1.
type Options = istore.Options

// Metrics aggregates operation counts across the store's lifetime.
type Metrics = istore.Metrics

// Ring is the consistent-hash shard ring used for key routing.
type Ring = istore.Ring

// Semantics selects the per-register protocol variant.
type Semantics = istore.Semantics

// Register semantics.
const (
	Safe       = istore.Safe
	Regular    = istore.Regular
	RegularOpt = istore.RegularOpt
)

// BatchOptions are the batched-transport knobs (flush window and max
// batch size); the zero value selects the defaults.
type BatchOptions = batch.Options

// FaultPlan is the seeded fault schedule of the chaos transport layer
// (internal/transport/fault): per-link drop/delay/duplication/
// reordering, partitions, and crash/restart of the FaultPlan.Faulty
// lowest-indexed objects per shard. Set it via Options.Faults. Byzantine
// failures count against the same t budget, so keep
// Faulty + ByzPerShard ≤ T.
type FaultPlan = fault.Plan

// CrashPlan schedules crash/restart (or partition/heal) windows for the
// faulty set of a FaultPlan.
type CrashPlan = fault.CrashPlan

// FaultStats counts injected faults; Store.FaultStats aggregates them
// across shards.
type FaultStats = fault.Stats

// FaultNet is one shard's fault-injection layer, exposed by
// Store.FaultNet for manual fault control in tests and demos.
type FaultNet = fault.Net

// FlowOptions are the end-to-end flow-control knobs
// (internal/transport/flow). Set them via Options.Flow; the zero value
// selects every default. With a policy in place, every queue in the
// stack is bounded (object request queues in total and per sender,
// batch pending budgets, fault-layer delay queues — and reply
// mailboxes by that admission), overloaded hops push back with a
// wire.Busy echo instead of queueing, and the client treats
// pushed-back members as transiently slow: it sheds up to t of them
// per round (the quorum needs only S−t replies) and hedges the
// stragglers with delayed re-sends instead of blocking.
type FlowOptions = flow.Options

// FlowStats counts flow-control activity (pushbacks, sheds, hedges,
// bounded-queue high watermarks); Store.FlowStats aggregates them
// across shards and layers.
type FlowStats = flow.Stats

// RecoveryPolicy configures the amnesia catch-up subsystem
// (internal/recovery). Set it via Options.Recovery; the zero value
// selects every default (catch-up quorum t+b+1). With a policy in
// place, a base object restarted WITHOUT stable storage (an amnesia
// crash window, or fault.Net.RestartObjectAmnesia) is fenced out of
// every quorum until it has rebuilt its registers from a quorum of
// shard siblings — so a wiped-and-recovered object stops counting
// against the fault budget t.
type RecoveryPolicy = recovery.Policy

// RecoveryStats counts completed catch-ups and transferred registers;
// Store.RecoveryStats aggregates them across shards.
type RecoveryStats = recovery.Stats

// MembershipPolicy configures the reconfiguration subsystem
// (internal/membership). Set it via Options.Membership (requires
// Options.Recovery); the zero value selects a random per-deployment
// signing key. With a policy in place, every request and reply carries
// a configuration epoch, and Store.Replace swaps a faulty base object
// for a fresh one at a new transport address while reads and writes
// continue: the replacement catches up from t+b+1 members of the old
// configuration before the shard flips, stale clients are redirected
// by a signed ConfigUpdate frame, and the evicted member stops counting
// against the fault budget t.
type MembershipPolicy = membership.Policy

// MemberView is one shard's member list at one configuration epoch —
// logical object slot i served at physical transport address
// Members[i]. Store.MemberView returns the current one; Store.Replace
// returns the successor it installed.
type MemberView = membership.View

// MembershipStats counts reconfiguration activity (replacements,
// redirects served, client view adoptions, replayed in-flight ops);
// Store.MembershipStats aggregates them across shards.
type MembershipStats = membership.Stats

// TelemetryOptions configures the unified observability core
// (internal/obs). Set it via Options.Telemetry; the zero value selects
// every default (8192-event trace ring, wall-clock timestamps). With it
// in place the store mounts a hierarchical metrics registry — per-shard
// operation counters, latency histograms, and the flow, fault,
// recovery, and membership instruments under store/shard=N/... paths —
// and records every register operation's round-structured lifecycle
// (plus flow pushbacks, sheds, hedges, recovery fences, and
// reconfiguration adoptions) into a bounded ring-buffer op trace.
// Deterministic harnesses inject their seeded clock via
// TelemetryOptions.Clock; TraceCapacity < 0 keeps metrics but disables
// tracing.
type TelemetryOptions = obs.Options

// TelemetrySnapshot is a point-in-time capture of the metrics registry,
// keyed by hierarchical path; Store.Telemetry returns one.
type TelemetrySnapshot = obs.Snapshot

// TelemetryExport bundles a metrics snapshot with the op trace — the
// JSON artifact chaos runs persist and cmd/storetop renders.
// Store.TelemetryExport returns one.
type TelemetryExport = obs.Export

// TraceEvent is one recorded step of an operation's lifecycle (round
// start, per-member reply, Busy pushback, shed, hedge volley, recovery
// fence, ...), stamped with the operation ID Store.TraceOp queries by.
type TraceEvent = obs.Event

// Open builds and starts a store per opts.
func Open(opts Options) (*Store, error) { return istore.Open(opts) }

// NewRing builds a standalone routing ring (vnodes ≤ 0 selects the
// default), for clients that need to predict placement without opening
// a store.
func NewRing(shards, vnodes int) (*Ring, error) { return istore.NewRing(shards, vnodes) }
